"""The prior-work [6] stepwise controller baseline."""

import pytest

from repro.control.stepwise import StepwiseFlowController
from repro.errors import ControlError
from repro.pump.laing_ddc import PumpState, laing_ddc


def make(start=2, upper=78.0, lower=72.0, settle=1):
    state = PumpState(laing_ddc(3), current_index=start)
    return StepwiseFlowController(
        state, upper_band=upper, lower_band=lower, settle_intervals=settle
    )


class TestLadder:
    def test_steps_up_when_hot(self):
        ctrl = make(start=2)
        assert ctrl.update(80.0, now=0.0) == 3
        assert ctrl.upshift_count == 1

    def test_steps_down_when_cool(self):
        ctrl = make(start=2)
        assert ctrl.update(70.0, now=0.0) == 1
        assert ctrl.downshift_count == 1

    def test_holds_inside_band(self):
        ctrl = make(start=2)
        assert ctrl.update(75.0, now=0.0) == 2
        assert ctrl.upshift_count == ctrl.downshift_count == 0

    def test_one_step_at_a_time(self):
        """Unlike the LUT controller, the ladder cannot jump: a very
        hot reading still moves only one setting per decision."""
        ctrl = make(start=0, settle=1)
        assert ctrl.update(95.0, now=0.0) == 1

    def test_saturates_at_ends(self):
        ctrl = make(start=4, settle=1)
        ctrl.update(95.0, now=0.0)
        assert ctrl.pump_state.commanded_index == 4
        ctrl = make(start=0, settle=1)
        ctrl.update(40.0, now=0.0)
        assert ctrl.pump_state.commanded_index == 0


class TestSettle:
    def test_cooldown_blocks_consecutive_steps(self):
        ctrl = make(start=0, settle=3)
        ctrl.update(90.0, now=0.0)   # Steps to 1, starts cooldown.
        ctrl.update(90.0, now=0.1)   # Blocked.
        ctrl.update(90.0, now=0.2)   # Blocked.
        ctrl.update(90.0, now=0.3)   # Blocked (third cooldown tick).
        assert ctrl.pump_state.commanded_index == 1
        ctrl.update(90.0, now=0.4)   # Free again.
        assert ctrl.pump_state.commanded_index == 2

    def test_reactive_lag_vs_lut(self):
        """The ladder needs multiple settle periods to climb from the
        bottom to the top — the reaction-time weakness the paper's
        proactive controller removes."""
        ctrl = make(start=0, settle=3)
        steps_needed = 0
        for k in range(40):
            ctrl.update(90.0, now=0.1 * k)
            steps_needed += 1
            if ctrl.pump_state.commanded_index == 4:
                break
        # 4 climbs, each followed by a 3-decision cooldown except the
        # last: 4 + 3*3 = 13 decisions at 100 ms each = 1.3 s of lag.
        assert steps_needed >= 13


class TestValidation:
    def test_rejects_inverted_bands(self):
        with pytest.raises(ControlError):
            make(upper=70.0, lower=75.0)

    def test_rejects_bad_settle(self):
        with pytest.raises(ControlError):
            make(settle=0)
