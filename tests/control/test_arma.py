"""ARMA fitting and forecasting (pure numpy Hannan-Rissanen)."""

import numpy as np
import pytest

from repro.control.arma import ArmaModel
from repro.errors import ControlError


def ar2_series(n, phi1=1.2, phi2=-0.4, sigma=0.1, seed=0):
    """A stable AR(2) process around a mean of 70."""
    rng = np.random.default_rng(seed)
    y = np.zeros(n)
    for t in range(2, n):
        y[t] = phi1 * y[t - 1] + phi2 * y[t - 2] + rng.normal(0, sigma)
    return y + 70.0


class TestFit:
    def test_recovers_ar_coefficients(self):
        series = ar2_series(2000)
        model = ArmaModel.fit(series, p=2, q=0)
        assert model.ar[0] == pytest.approx(1.2, abs=0.1)
        assert model.ar[1] == pytest.approx(-0.4, abs=0.1)

    def test_mean_estimated(self):
        series = ar2_series(1000)
        model = ArmaModel.fit(series, p=2, q=1)
        assert model.mean == pytest.approx(70.0, abs=1.0)

    def test_sigma_close_to_innovation_std(self):
        series = ar2_series(2000, sigma=0.1)
        model = ArmaModel.fit(series, p=3, q=1)
        assert model.sigma == pytest.approx(0.1, rel=0.3)

    def test_constant_series(self):
        model = ArmaModel.fit(np.full(100, 55.0), p=2, q=1)
        assert model.forecast(np.full(100, 55.0), steps=5) == pytest.approx(55.0)

    def test_too_short_raises(self):
        with pytest.raises(ControlError):
            ArmaModel.fit(np.ones(10), p=3, q=2)

    def test_bad_orders(self):
        with pytest.raises(ControlError):
            ArmaModel.fit(np.ones(100), p=0, q=0)

    def test_non_1d_rejected(self):
        with pytest.raises(ControlError):
            ArmaModel.fit(np.ones((10, 10)), p=1, q=0)


class TestForecast:
    def test_one_step_accuracy_on_ar2(self):
        """One-step predictions on a strongly serially correlated
        signal must beat persistence — the property the paper's
        forecasting relies on."""
        series = ar2_series(600, sigma=0.1)
        train, test = series[:400], series[400:]
        model = ArmaModel.fit(train, p=3, q=1)
        errors, persistence = [], []
        history = list(train)
        for value in test:
            pred = model.one_step_prediction(np.asarray(history))
            errors.append(abs(pred - value))
            persistence.append(abs(history[-1] - value))
            history.append(value)
        assert np.mean(errors) < np.mean(persistence)

    def test_five_step_forecast_reasonable(self):
        """The paper predicts 500 ms (5 samples) ahead with error well
        below 1 degC on temperature-like signals."""
        series = ar2_series(600, sigma=0.05)
        model = ArmaModel.fit(series[:500], p=3, q=1)
        pred = model.forecast(series[:500], steps=5)
        assert abs(pred - series[504]) < 1.0

    def test_forecast_of_trend_extrapolates(self):
        t = np.arange(200, dtype=float)
        series = 60.0 + 0.05 * t
        model = ArmaModel.fit(series, p=2, q=0)
        pred = model.forecast(series, steps=5)
        assert pred > series[-1] - 0.01  # Must not lag a rising trend.

    def test_rejects_bad_steps(self):
        series = ar2_series(200)
        model = ArmaModel.fit(series, p=2, q=1)
        with pytest.raises(ControlError):
            model.forecast(series, steps=0)

    def test_residuals_shape(self):
        series = ar2_series(300)
        model = ArmaModel.fit(series, p=2, q=1)
        res = model.residuals(series)
        assert res.shape == series.shape
        assert np.all(res[: max(model.p, model.q)] == 0.0)

    def test_residuals_smaller_than_signal_variation(self):
        series = ar2_series(500)
        model = ArmaModel.fit(series, p=3, q=1)
        res = model.residuals(series)
        assert res[10:].std() < np.diff(series).std()
