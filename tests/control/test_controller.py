"""The flow-rate controller: proactive LUT control with hysteresis."""

import numpy as np
import pytest

from repro.control.controller import FlowRateController
from repro.control.flow_table import FlowRateTable
from repro.errors import ControlError
from repro.pump.laing_ddc import PumpState, laing_ddc


def toy_steady_tmax(setting: int, utilization: float) -> float:
    return 65.0 + 30.0 * utilization - 4.0 * setting


@pytest.fixture
def table():
    pump = laing_ddc(3)
    return FlowRateTable.characterize(
        steady_tmax=toy_steady_tmax,
        n_settings=pump.n_settings,
        per_cavity_flows=pump.per_cavity_flows(),
        utilizations=np.linspace(0.0, 1.0, 11),
        target=80.0,
    )


def make_controller(table, start=4, hysteresis=2.0, minimum=0):
    state = PumpState(laing_ddc(3), current_index=start)
    return FlowRateController(table, state, hysteresis=hysteresis, minimum_setting=minimum)


class TestUpshift:
    def test_upshift_on_hot_forecast(self, table):
        ctrl = make_controller(table, start=0)
        # At setting 0, 95 degC maps to a high utilization needing more flow.
        commanded = ctrl.update(95.0, now=0.0)
        assert commanded > 0
        assert ctrl.upshift_count == 1

    def test_upshift_is_immediate_no_hysteresis(self, table):
        ctrl = make_controller(table, start=0, hysteresis=5.0)
        assert ctrl.update(95.0, now=0.0) > 0


class TestDownshift:
    def test_downshift_requires_margin(self, table):
        """The paper's rule: no down-switch until the prediction is at
        least 2 degC below the boundary temperature."""
        ctrl = make_controller(table, start=4)
        # Find the boundary between settings 3 and 4 as observed at 4.
        boundary = table.boundaries(4)[3]
        # Just below the boundary: required is 3, but margin not met.
        ctrl.update(boundary - 1.0, now=0.0)
        assert ctrl.pump_state.commanded_index == 4
        assert ctrl.downshift_count == 0
        # Clearly below the boundary minus hysteresis: now it drops.
        ctrl.update(boundary - 2.5, now=1.0)
        assert ctrl.pump_state.commanded_index < 4
        assert ctrl.downshift_count == 1

    def test_no_oscillation_at_boundary(self, table):
        """Dithering +-0.5 degC around a boundary must not produce
        command oscillation (the rationale for the 2 degC rule)."""
        ctrl = make_controller(table, start=4)
        boundary = table.boundaries(4)[3]
        commands = []
        for k in range(20):
            t = boundary + (0.5 if k % 2 == 0 else -0.5)
            commands.append(ctrl.update(t, now=k * 0.1))
        assert len(set(commands)) == 1  # Never moved.


class TestMinimumSetting:
    def test_floor_respected_on_downshift(self, table):
        ctrl = make_controller(table, start=4, minimum=2)
        ctrl.update(40.0, now=0.0)  # Very cold forecast.
        assert ctrl.pump_state.commanded_index == 2

    def test_floor_respected_from_start(self, table):
        ctrl = make_controller(table, start=1, minimum=3)
        ctrl.update(40.0, now=0.0)
        assert ctrl.pump_state.commanded_index == 3


class TestTransitionInteraction:
    def test_observed_setting_lags_command(self, table):
        """Between command and completion the observed setting is the
        old one; the controller must keep translating temperatures at
        the flow the coolant actually has."""
        ctrl = make_controller(table, start=0)
        ctrl.update(95.0, now=0.0)
        assert ctrl.pump_state.current_index == 0  # Still transitioning.
        ctrl.update(95.0, now=0.1)
        assert ctrl.pump_state.current_index == 0
        ctrl.update(95.0, now=0.35)  # Transition (0.3 s) complete.
        assert ctrl.pump_state.current_index > 0


class TestValidation:
    def test_rejects_negative_hysteresis(self, table):
        with pytest.raises(ControlError):
            make_controller(table, hysteresis=-1.0)

    def test_rejects_bad_minimum(self, table):
        with pytest.raises(ControlError):
            make_controller(table, minimum=9)

    def test_rejects_mismatched_pump(self, table):
        from repro.pump.laing_ddc import PumpModel

        small_pump = PumpModel(settings_lh=(75.0, 150.0), n_cavities=3)
        with pytest.raises(ControlError):
            FlowRateController(table, PumpState(small_pump))
