"""The PID flow-controller baseline."""

import pytest

from repro.control.pid import PidFlowController
from repro.errors import ControlError
from repro.pump.laing_ddc import PumpState, laing_ddc


def _state(n=5, start=0):
    return PumpState(laing_ddc(n), current_index=start)


def _settle(state, now):
    """Let any pending transition complete."""
    state.advance(now + 10.0)


class TestPidFlowController:
    def test_reactive_capability(self):
        assert PidFlowController.reacts_to_forecast is False

    def test_cold_chip_commands_minimum_flow(self):
        controller = PidFlowController(_state(start=4), setpoint=77.0)
        assert controller.update(40.0, 0.1) == 0

    def test_hot_chip_commands_maximum_flow(self):
        controller = PidFlowController(_state(), setpoint=77.0, kp=2.0)
        assert controller.update(95.0, 0.1) == 4

    def test_proportional_response_scales_with_error(self):
        low = PidFlowController(_state(), setpoint=77.0, kp=1.0, ki=0.0, kd=0.0)
        high = PidFlowController(_state(), setpoint=77.0, kp=1.0, ki=0.0, kd=0.0)
        assert low.update(78.0, 0.1) <= high.update(80.0, 0.1)

    def test_integral_removes_steady_offset(self):
        """A persistent half-setting error eventually steps the pump up
        even though the proportional term alone rounds to the floor."""
        controller = PidFlowController(
            _state(), setpoint=77.0, kp=0.4, ki=0.5, kd=0.0
        )
        state = controller.pump_state
        settings = []
        for k in range(30):
            now = 0.1 * (k + 1)
            settings.append(controller.update(78.0, now))
            _settle(state, now)
        assert settings[0] == 0
        assert settings[-1] >= 1

    def test_anti_windup_bounds_the_integral(self):
        """A long saturated stretch must not accumulate unbounded
        integral that delays the response when the sign flips."""
        controller = PidFlowController(
            _state(), setpoint=77.0, kp=1.0, ki=1.0, kd=0.0
        )
        state = controller.pump_state
        for k in range(100):  # 10 simulated seconds far above setpoint.
            now = 0.1 * (k + 1)
            controller.update(95.0, now)
            _settle(state, now)
        assert controller.pump_state.commanded_index == 4
        # Now the chip is cold: the command must drop immediately, not
        # after unwinding 10 s of windup.
        controller.update(60.0, 10.1)
        assert controller.pump_state.commanded_index == 0

    def test_shift_counters(self):
        controller = PidFlowController(_state(), setpoint=77.0, kp=2.0)
        state = controller.pump_state
        controller.update(95.0, 0.1)
        _settle(state, 0.1)
        controller.update(40.0, 0.2)
        assert controller.upshift_count == 1
        assert controller.downshift_count == 1

    def test_default_setpoint_derives_from_target(self):
        controller = PidFlowController(
            _state(), margin=3.0, target_temperature=80.0
        )
        assert controller.setpoint == 77.0

    def test_negative_gains_rejected(self):
        with pytest.raises(ControlError):
            PidFlowController(_state(), kp=-1.0)
        with pytest.raises(ControlError):
            PidFlowController(_state(), margin=-1.0)
