"""Temperature forecaster: ARMA + SPRT retraining orchestration."""

import numpy as np
import pytest

from repro.control.forecaster import TemperatureForecaster
from repro.errors import ControlError


def feed(forecaster, series):
    for value in series:
        forecaster.observe(float(value))


class TestWarmup:
    def test_persistence_before_enough_history(self):
        f = TemperatureForecaster(min_history=40)
        feed(f, [70.0, 71.0, 72.0])
        assert f.predict() == pytest.approx(72.0)
        assert f.model is None

    def test_fits_after_min_history(self):
        f = TemperatureForecaster(min_history=40)
        rng = np.random.default_rng(0)
        feed(f, 70.0 + rng.normal(0, 0.3, 45))
        assert f.model is not None
        assert f.retrain_count == 1

    def test_predict_without_observations_raises(self):
        with pytest.raises(ControlError):
            TemperatureForecaster().predict()


class TestPrediction:
    def test_tracks_slow_sine(self):
        """Maximum temperature varies slowly (thermal time constants);
        the 5-step forecast must stay within ~1 degC."""
        f = TemperatureForecaster(horizon_steps=5, min_history=40)
        t = np.arange(300)
        series = 75.0 + 3.0 * np.sin(2 * np.pi * t / 120.0)
        errors = []
        for k in range(len(series) - 5):
            f.observe(series[k])
            if k > 60:
                errors.append(abs(f.predict() - series[k + 5]))
        assert np.mean(errors) < 1.0

    def test_prediction_clamped_to_physical_band(self):
        f = TemperatureForecaster(min_history=40)
        rng = np.random.default_rng(1)
        feed(f, 70.0 + rng.normal(0, 0.2, 60))
        pred = f.predict()
        assert 40.0 < pred < 100.0


class TestRetraining:
    def test_regime_change_triggers_retrain(self):
        """A day/night-style workload shift must trip the SPRT and
        re-fit the predictor (Section IV)."""
        f = TemperatureForecaster(min_history=40, window=80)
        rng = np.random.default_rng(2)
        feed(f, 70.0 + rng.normal(0, 0.2, 80))
        before = f.retrain_count
        # Abrupt shift to a different level and slope.
        feed(f, 85.0 + 0.5 * np.arange(40.0) + rng.normal(0, 0.2, 40))
        assert f.retrain_count > before

    def test_stationary_signal_rarely_retrains(self):
        f = TemperatureForecaster(min_history=40, window=80)
        rng = np.random.default_rng(3)
        feed(f, 72.0 + rng.normal(0, 0.25, 500))
        assert f.retrain_count <= 4


class TestValidation:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ControlError):
            TemperatureForecaster(horizon_steps=0)

    def test_rejects_window_smaller_than_min_history(self):
        with pytest.raises(ControlError):
            TemperatureForecaster(window=30, min_history=40)

    def test_rejects_small_min_history(self):
        with pytest.raises(ControlError):
            TemperatureForecaster(order=(4, 4), min_history=20)

    def test_rejects_non_finite_observation(self):
        f = TemperatureForecaster()
        with pytest.raises(ControlError):
            f.observe(float("inf"))
