"""Closed-loop facility: conservation, convergence, registry schema.

The two property tests are the satellite acceptance criteria: per
interval, the heat the chip loop rejects equals the CDU transfer plus
the loop's storage term (exactly, by construction of the tank
balance), and under constant chip power the closed loop converges to
a fixed-point inlet temperature.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ModelError
from repro.facility import ClosedLoopFacility, FacilityModel, FacilityState
from repro.registry import FacilityContext, facility_registry

loop_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_loop(**params):
    """A per-chip closed loop via the registry (defaults unless swept)."""
    ctx = FacilityContext(config=None, initial_inlet_temperature=60.0)
    return facility_registry().create("closed-loop", params, ctx)


class TestRegistry:
    def test_none_key_builds_no_facility(self):
        ctx = FacilityContext(config=None, initial_inlet_temperature=60.0)
        assert facility_registry().create("none", {}, ctx) is None
        assert facility_registry().create("fixed-inlet", {}, ctx) is None

    def test_closed_loop_satisfies_the_protocol(self):
        loop = build_loop()
        assert isinstance(loop, FacilityModel)
        assert loop.scale == 1.0
        assert loop.inlet_temperature == 60.0

    def test_rack_aggregation_sets_the_scale(self):
        loop = build_loop(racks=2250, chips_per_rack=4)
        assert loop.scale == 9000.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            build_loop(nonsense=1.0)

    def test_out_of_range_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            build_loop(wet_bulb_c=80.0)


class TestAdvance:
    def test_returns_a_state_with_consistent_totals(self):
        loop = build_loop(racks=3)
        state = loop.advance(0.1, chip_heat=25.0, chip_power=29.0,
                             chip_pump_power=2.0)
        assert isinstance(state, FacilityState)
        assert state.chip_heat == pytest.approx(75.0)  # 25 W x scale 3
        assert state.cooling_power == pytest.approx(
            state.chiller_power + state.tower_fan_power + state.pump_power
        )
        assert state.inlet_temperature == loop.inlet_temperature

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ModelError, match="positive"):
            build_loop().advance(0.0, 25.0, 29.0, 2.0)

    def test_hot_water_setpoint_free_cools_chilled_does_not(self):
        # Tower supply = 22 + 4 = 26 degC: undercut by the 60 degC
        # hot-water setpoint, useless against an 18 degC one.
        hot = build_loop(supply_setpoint_c=60.0, wet_bulb_c=22.0)
        chilled = build_loop(supply_setpoint_c=18.0, wet_bulb_c=22.0)
        hot_state = hot.advance(0.1, 25.0, 29.0, 2.0)
        chilled_state = chilled.advance(0.1, 25.0, 29.0, 2.0)
        assert hot_state.free_cooling
        assert hot_state.chiller_power == 0.0
        assert not chilled_state.free_cooling
        assert chilled_state.chiller_power > 0.0


class TestConservationProperty:
    @loop_settings
    @given(
        chip_heat=st.floats(min_value=0.0, max_value=200.0),
        dt=st.floats(min_value=0.01, max_value=1.0),
        setpoint=st.floats(min_value=30.0, max_value=70.0),
        volume=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_chip_heat_equals_cdu_heat_plus_loop_storage(
        self, chip_heat, dt, setpoint, volume
    ):
        """Q_chip * dt == Q_cdu * dt + C_loop * dT_loop per interval.

        Parameters stay well inside the loop's [2, 98] degC clamp so
        the tank balance is the exact update that produced the state.
        """
        loop = build_loop(supply_setpoint_c=setpoint, loop_volume_l=volume)
        for _ in range(5):
            t_before = loop.inlet_temperature
            c_loop = loop.loop_heat_capacity()
            state = loop.advance(dt, chip_heat, 29.0, 2.0)
            storage = c_loop * (state.loop_temperature - t_before)
            assert chip_heat * dt == pytest.approx(
                state.cdu_heat * dt + storage, rel=1e-9, abs=1e-9
            )

    @loop_settings
    @given(racks=st.integers(min_value=1, max_value=2250))
    def test_intensive_quantities_are_scale_invariant(self, racks):
        """Temperatures (and hence PUE inputs) do not depend on scale."""
        one = build_loop(racks=1)
        many = build_loop(racks=racks)
        for _ in range(10):
            s1 = one.advance(0.1, 25.0, 29.0, 2.0)
            sn = many.advance(0.1, 25.0, 29.0, 2.0)
            assert sn.inlet_temperature == s1.inlet_temperature
            assert sn.cooling_power == pytest.approx(
                racks * s1.cooling_power
            )
            assert sn.free_cooling == s1.free_cooling


class TestConvergenceProperty:
    @loop_settings
    @given(
        chip_heat=st.floats(min_value=1.0, max_value=60.0),
        setpoint=st.floats(min_value=35.0, max_value=70.0),
        overshoot=st.floats(min_value=0.0, max_value=20.0),
    )
    def test_constant_power_converges_to_a_fixed_point(
        self, chip_heat, setpoint, overshoot
    ):
        """Under constant chip power the loop temperature settles: the
        inlet reaches a fixed point (the setpoint whenever the CDU has
        the capacity to serve it) and stops moving. The loop starts at
        or above the setpoint — pulling the tank *down* is the CDU's
        job; warming it up from below is rate-limited by the chip heat
        itself and takes unbounded simulated time.
        """
        ctx = FacilityContext(
            config=None, initial_inlet_temperature=setpoint + overshoot
        )
        loop = facility_registry().create(
            "closed-loop", {"supply_setpoint_c": setpoint}, ctx
        )
        for _ in range(600):
            state = loop.advance(0.5, chip_heat, 29.0, 2.0)
        settled = state.inlet_temperature
        state = loop.advance(0.5, chip_heat, 29.0, 2.0)
        assert state.inlet_temperature == pytest.approx(settled, abs=1e-5)
        # The valve steers to the setpoint whenever it can; it may
        # float above when the exchanger is capacity-limited, but
        # never settles below the setpoint.
        assert state.inlet_temperature >= setpoint - 1e-6

    def test_default_loop_settles_on_the_paper_setpoint(self):
        loop = build_loop()  # 60 degC setpoint, 60 degC start
        for _ in range(100):
            state = loop.advance(0.1, 25.0, 29.0, 2.0)
        assert state.inlet_temperature == pytest.approx(60.0, abs=0.5)
