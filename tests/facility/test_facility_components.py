"""Facility component physics: CDU, chiller, tower, pumps, coolant."""

import math

import pytest

from repro.errors import ModelError
from repro.facility import (
    CduHeatExchanger,
    Chiller,
    CoolingTower,
    PumpCurve,
    water_density,
    water_heat_capacity,
)


class TestCoolantProperties:
    def test_heat_capacity_near_handbook_values(self):
        # ~4183 J/(kg K) at 60 degC, rising toward both ends of the band.
        assert water_heat_capacity(60.0) == pytest.approx(4183.0, abs=5.0)
        assert water_heat_capacity(20.0) == pytest.approx(4182.0, abs=5.0)

    def test_density_decreases_with_temperature(self):
        assert water_density(20.0) > water_density(60.0) > water_density(90.0)
        assert water_density(20.0) == pytest.approx(998.0, abs=2.0)

    def test_out_of_band_temperature_rejected(self):
        with pytest.raises(ModelError, match="liquid water"):
            water_heat_capacity(120.0)
        with pytest.raises(ModelError, match="liquid water"):
            water_density(-5.0)


class TestCduHeatExchanger:
    def test_effectiveness_in_unit_interval_and_monotone_in_ua(self):
        c_hot, c_cold = 70.0, 140.0
        small = CduHeatExchanger(ua=5.0).effectiveness(c_hot, c_cold)
        large = CduHeatExchanger(ua=500.0).effectiveness(c_hot, c_cold)
        assert 0.0 < small < large < 1.0

    def test_balanced_stream_limit(self):
        # Counterflow e-NTU degenerates to ntu/(1+ntu) when Cr -> 1.
        ua, c = 25.0, 70.0
        ntu = ua / c
        eff = CduHeatExchanger(ua=ua).effectiveness(c, c)
        assert eff == pytest.approx(ntu / (1.0 + ntu))

    def test_max_heat_transfer_never_negative(self):
        cdu = CduHeatExchanger(ua=25.0)
        # Cold side hotter than hot side: no reverse transfer.
        assert cdu.max_heat_transfer(20.0, 60.0, 70.0, 140.0) == 0.0
        assert cdu.max_heat_transfer(60.0, 20.0, 70.0, 140.0) > 0.0

    def test_invalid_ua_rejected(self):
        with pytest.raises(ModelError):
            CduHeatExchanger(ua=0.0)


class TestChiller:
    def test_cop_is_a_carnot_fraction(self):
        chiller = Chiller(carnot_fraction=0.5)
        cop = chiller.cop(18.0, 26.0)
        t_evap = 273.15 + 18.0 - chiller.evaporator_approach
        t_cond = 273.15 + 26.0 + chiller.condenser_approach
        assert cop == pytest.approx(0.5 * t_evap / (t_cond - t_evap))

    def test_power_scales_inversely_with_cop(self):
        chiller = Chiller(carnot_fraction=0.5)
        q = 1000.0
        assert chiller.power(q, 18.0, 26.0) == pytest.approx(
            q / chiller.cop(18.0, 26.0)
        )

    def test_free_lift_costs_nothing(self):
        # Condenser colder than evaporator: COP caps out, power ~ 0.
        chiller = Chiller(carnot_fraction=0.5)
        assert chiller.power(1000.0, 60.0, 10.0) == pytest.approx(0.0, abs=1e-2)


class TestCoolingTower:
    def test_supply_approaches_wet_bulb(self):
        tower = CoolingTower(approach=4.0)
        assert tower.supply_temperature(22.0) == pytest.approx(26.0)

    def test_water_use_includes_blowdown(self):
        evap_only = CoolingTower(cycles_of_concentration=1e9).water_use(1e5)
        with_blowdown = CoolingTower(cycles_of_concentration=4.0).water_use(1e5)
        assert with_blowdown > evap_only > 0.0

    def test_fan_power_is_a_fraction_of_rejected_heat(self):
        tower = CoolingTower(fan_power_fraction=0.015)
        assert tower.fan_power(1000.0) == pytest.approx(15.0)


class TestPumpCurve:
    def test_design_point_power(self):
        flow, head, eta = 1.0 / 60000.0, 10.0, 0.7
        pump = PumpCurve(design_flow=flow, design_head=head, efficiency=eta)
        power = pump.electrical_power(flow, density=998.0)
        expected = 998.0 * 9.80665 * flow * pump.head(flow) / eta
        assert power == pytest.approx(expected)
        assert math.isfinite(power) and power > 0.0

    def test_zero_flow_draws_nothing(self):
        pump = PumpCurve(design_flow=1e-5, design_head=10.0)
        assert pump.electrical_power(0.0) == 0.0

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ModelError):
            PumpCurve(design_flow=1e-5, design_head=10.0, efficiency=0.0)
