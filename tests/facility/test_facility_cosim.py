"""Engine co-simulation, signature stability, and facility I/O.

The pinned-signature tests hardcode the exact pre-facility
``config_signature`` dicts: if the facility fields ever leak into a
default config's signature, old sweep checkpoints and dist ledgers
stop resuming, and these tests fail before any user hits it.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.batch import config_descriptor
from repro.io.serialize import (
    load_result,
    result_summary,
    save_result,
    write_timeseries_csv,
)
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate
from repro.sweep.spec import config_signature

BASE = dict(
    benchmark_name="Web-med",
    policy=PolicyKind.TALB,
    cooling=CoolingMode.LIQUID_VARIABLE,
    duration=2.0,
    seed=0,
)

#: The paper's thermal parameters, verbatim — shared by every pinned
#: signature below.
_THERMAL_SIG = {
    "air_resistance_scale": 2.9,
    "inlet_temperature": 60.0,
    "interlayer_conductivity": 4.0,
    "interlayer_vol_capacity": 2000000.0,
    "k_silicon": 148.0,
    "r_beol_area": 5.333e-06,
    "resistance_scale": 4.5,
    "silicon_vol_capacity": 1659000.0,
    "tsv_conductivity": 400.0,
}


class TestSignaturePin:
    def test_default_config_signature_is_byte_stable(self):
        assert config_signature(SimulationConfig()) == {
            "benchmark_name": "Web-med",
            "characterization_guard": 3.0,
            "controller": "lut",
            "cooling": "Var",
            "dpm_enabled": False,
            "duration": 30.0,
            "forecast_enabled": True,
            "hysteresis": 2.0,
            "n_layers": 2,
            "nx": 16,
            "ny": 16,
            "policy": "TALB",
            "quantum": 0.01,
            "sampling_interval": 0.1,
            "seed": 0,
            "talb_weight_target": 75.0,
            "target_temperature": 80.0,
            "thermal_params": _THERMAL_SIG,
        }

    def test_tuned_pre_facility_config_signature_is_byte_stable(self):
        config = SimulationConfig(
            benchmark_name="Database",
            controller="pid",
            controller_params={"kp": 0.75},
            n_layers=4,
            dpm_enabled=True,
        )
        assert config_signature(config) == {
            "benchmark_name": "Database",
            "characterization_guard": 3.0,
            "controller": "pid",
            "controller_params": {"kp": 0.75},
            "cooling": "Var",
            "dpm_enabled": True,
            "duration": 30.0,
            "forecast_enabled": True,
            "hysteresis": 2.0,
            "n_layers": 4,
            "nx": 16,
            "ny": 16,
            "policy": "TALB",
            "quantum": 0.01,
            "sampling_interval": 0.1,
            "seed": 0,
            "talb_weight_target": 75.0,
            "target_temperature": 80.0,
            "thermal_params": _THERMAL_SIG,
        }

    def test_facility_fields_enter_the_signature_only_when_set(self):
        plain = config_signature(SimulationConfig(**BASE))
        assert "facility" not in plain
        assert "facility_params" not in plain
        closed = config_signature(
            SimulationConfig(**BASE, facility="closed-loop",
                             facility_params={"wet_bulb_c": 14.0})
        )
        assert closed["facility"] == "closed-loop"
        assert closed["facility_params"] == {"wet_bulb_c": 14.0}


class TestEngineCoupling:
    def test_fixed_inlet_alias_is_byte_identical_to_default(self):
        baseline = simulate(SimulationConfig(**BASE))
        aliased = simulate(SimulationConfig(**BASE, facility="fixed-inlet"))
        assert not baseline.has_facility and not aliased.has_facility
        np.testing.assert_array_equal(aliased.tmax, baseline.tmax)
        np.testing.assert_array_equal(
            aliased.core_temperatures, baseline.core_temperatures
        )
        np.testing.assert_array_equal(aliased.pump_power, baseline.pump_power)

    def test_fixed_inlet_metrics_are_undefined(self):
        result = simulate(SimulationConfig(**BASE))
        assert np.isnan(result.pue())
        assert np.isnan(result.total_cooling_power())
        summary = result_summary(result)
        assert summary["pue"] is None
        assert summary["total_cooling_power_w"] is None

    def test_closed_loop_reports_first_class_metrics(self):
        result = simulate(SimulationConfig(**BASE, facility="closed-loop"))
        assert result.has_facility
        assert len(result.facility_inlet) == len(result.times)
        assert result.pue() > 1.0
        assert result.total_cooling_power() > 0.0
        assert result.wue() > 0.0
        # Paper setpoint + start at 60 degC: the loop holds station.
        assert result.mean_inlet_temperature() == pytest.approx(60.0, abs=1.0)
        assert result.free_cooling_fraction() == 1.0
        summary = result_summary(result)
        assert summary["pue"] == pytest.approx(result.pue())
        assert summary["free_cooling_pct"] == pytest.approx(100.0)

    def test_closed_loop_converges_to_the_setpoint(self):
        result = simulate(SimulationConfig(
            benchmark_name="Web-med",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=10.0,
            seed=0,
            facility="closed-loop",
            # A small tank so the CDU can land the 5 K pull-down well
            # inside the 10 s run.
            facility_params={"supply_setpoint_c": 55.0, "loop_volume_l": 0.1},
        ))
        # Started at 60 degC, steered to 55: monotone approach, settled
        # within the control band by the end of the run.
        inlet = result.facility_inlet
        assert inlet[0] <= 60.0
        assert np.all(np.diff(inlet) <= 1e-9)
        assert abs(inlet[-1] - 55.0) < 0.5
        assert abs(inlet[-1] - inlet[-2]) < 0.05

    def test_facility_requires_liquid_cooling(self):
        with pytest.raises(ConfigurationError, match="liquid"):
            simulate(SimulationConfig(
                benchmark_name="Web-med",
                cooling=CoolingMode.AIR,
                duration=1.0,
                facility="closed-loop",
            ))

    def test_aggregation_scale_leaves_temperatures_unchanged(self):
        small = simulate(SimulationConfig(**BASE, facility="closed-loop"))
        big = simulate(SimulationConfig(
            **BASE, facility="closed-loop",
            facility_params={"racks": 2250, "chips_per_rack": 4},
        ))
        np.testing.assert_array_equal(big.tmax, small.tmax)
        np.testing.assert_array_equal(big.facility_inlet, small.facility_inlet)
        assert big.facility_scale == 9000.0
        # PUE/WUE are intensive; cooling power reports at room scale.
        assert big.pue() == pytest.approx(small.pue())
        assert big.wue() == pytest.approx(small.wue())
        assert big.total_cooling_power() == pytest.approx(
            9000.0 * small.total_cooling_power()
        )


class TestFacilityIo:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(SimulationConfig(**BASE, facility="closed-loop"))

    def test_json_round_trip_preserves_facility_series(self, tmp_path, result):
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.has_facility
        assert loaded.facility_scale == result.facility_scale
        np.testing.assert_array_equal(loaded.facility_inlet, result.facility_inlet)
        np.testing.assert_array_equal(
            loaded.facility_cooling_power, result.facility_cooling_power
        )
        np.testing.assert_array_equal(
            loaded.facility_free_cooling, result.facility_free_cooling
        )
        assert loaded.pue() == result.pue()

    def test_fixed_inlet_payload_has_no_facility_block(self, tmp_path):
        result = simulate(SimulationConfig(**BASE))
        path = tmp_path / "run.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        assert "facility" not in payload
        assert not load_result(path).has_facility

    def test_csv_gains_facility_columns_only_with_a_facility(
        self, tmp_path, result
    ):
        fixed = simulate(SimulationConfig(**BASE))
        write_timeseries_csv(fixed, tmp_path / "fixed.csv")
        write_timeseries_csv(result, tmp_path / "loop.csv")
        fixed_header = (tmp_path / "fixed.csv").read_text().splitlines()[0]
        loop_header = (tmp_path / "loop.csv").read_text().splitlines()[0]
        assert "facility_inlet_c" not in fixed_header
        for column in ("facility_inlet_c", "facility_cooling_power_w",
                       "facility_water_kg_s", "free_cooling"):
            assert column in loop_header

    def test_config_descriptor_carries_facility_columns(self):
        config = SimulationConfig(
            **BASE, facility="closed-loop",
            facility_params={"wet_bulb_c": 14.0},
        )
        descriptor = config_descriptor(config)
        assert descriptor["facility"] == "closed-loop"
        assert json.loads(descriptor["facility_params"]) == {"wet_bulb_c": 14.0}
        assert config_descriptor(SimulationConfig(**BASE))["facility"] == "none"
