"""The ThermalSystem bundle: caches and steady-state evaluation."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.system import ThermalSystem


@pytest.fixture(scope="module")
def system():
    return ThermalSystem(2, CoolingKind.LIQUID, nx=10, ny=10)


@pytest.fixture(scope="module")
def air_system():
    return ThermalSystem(2, CoolingKind.AIR, nx=10, ny=10)


@pytest.fixture(scope="module")
def power_model(system):
    return PowerModel(system.stack, leakage=LeakageModel())


class TestCaches:
    def test_network_cached_per_setting(self, system):
        assert system.network(0) is system.network(0)
        assert system.network(0) is not system.network(1)

    def test_transient_solver_cached(self, system):
        assert system.transient_solver(0, 0.1) is system.transient_solver(0, 0.1)
        assert system.transient_solver(0, 0.1) is not system.transient_solver(0, 0.05)

    def test_air_rejects_setting(self, air_system):
        with pytest.raises(ConfigurationError):
            air_system.network(0)

    def test_air_rejects_continuous_flow(self, air_system):
        with pytest.raises(ConfigurationError):
            air_system.network_for_flow(1.0e-5)

    def test_pump_sized_to_cavities(self, system):
        assert system.pump.n_cavities == 3

    def test_four_layer_pump(self):
        sys4 = ThermalSystem(4, CoolingKind.LIQUID, nx=8, ny=8)
        assert sys4.pump.n_cavities == 5


class TestSteadyState:
    def test_tmax_monotone_in_utilization(self, system, power_model):
        temps = [
            system.steady_tmax(power_model, u, setting_index=0)
            for u in (0.0, 0.3, 0.6, 0.9)
        ]
        assert temps == sorted(temps)

    def test_tmax_monotone_in_flow_setting(self, system, power_model):
        temps = [
            system.steady_tmax(power_model, 0.9, setting_index=k) for k in range(5)
        ]
        assert temps == sorted(temps, reverse=True)

    def test_operating_band_matches_figure5(self):
        """Calibration: at the default (16x16) resolution the hottest
        workload spans roughly the 70-90 degC band of Figure 5 between
        min and max flow."""
        system = ThermalSystem(2, CoolingKind.LIQUID, nx=16, ny=16)
        power_model = PowerModel(system.stack, leakage=LeakageModel())
        hot_min = system.steady_tmax(power_model, 0.93, setting_index=0)
        hot_max = system.steady_tmax(power_model, 0.93, setting_index=4)
        assert 82.0 < hot_min < 90.0
        assert 72.0 < hot_max < 80.0

    def test_concentrated_hotter_than_uniform_same_total(self, system, power_model):
        """One core at 100% runs locally hotter than all cores at
        12.5% — the burst-floor rationale."""
        concentrated = system.steady_tmax_concentrated(power_model, setting_index=0)
        uniform = system.steady_tmax(power_model, 1.0 / 8.0, setting_index=0)
        assert concentrated > uniform

    def test_utilization_validated(self, system, power_model):
        with pytest.raises(ConfigurationError):
            system.steady_tmax(power_model, 1.5, setting_index=0)

    def test_concentrated_core_count_validated(self, system, power_model):
        with pytest.raises(ConfigurationError):
            system.steady_tmax_concentrated(power_model, setting_index=0, n_active=99)

    def test_continuous_flow_between_settings(self, system, power_model):
        """A flow between two settings produces a T_max between their
        T_max values."""
        f1 = system.pump.setting(1).per_cavity_flow
        f2 = system.pump.setting(2).per_cavity_flow
        net_mid = system.network_for_flow(0.5 * (f1 + f2))
        from repro.thermal.solver import SteadyStateSolver

        p = system.grid.power_vector(
            {(0, f"core{i}"): 3.0 for i in range(8)}
        )
        t_mid = system.grid.max_unit_temperature(SteadyStateSolver(net_mid).solve(p))
        t1 = system.grid.max_unit_temperature(
            SteadyStateSolver(system.network(1)).solve(p)
        )
        t2 = system.grid.max_unit_temperature(
            SteadyStateSolver(system.network(2)).solve(p)
        )
        assert t2 < t_mid < t1
