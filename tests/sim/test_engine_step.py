"""The step-based engine API: step(), observers, early stop, probes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.config import CoolingMode, SimulationConfig
from repro.sim.engine import IntervalState, Simulator, simulate


def _config(**kw):
    kw.setdefault("benchmark_name", "gzip")
    kw.setdefault("policy", "LB")
    kw.setdefault("cooling", CoolingMode.LIQUID_VARIABLE)
    kw.setdefault("duration", 2.0)
    return SimulationConfig(**kw)


def _assert_results_identical(a, b):
    for field in (
        "times", "tmax", "tmax_cell", "core_temperatures", "unit_temperatures",
        "chip_power", "pump_power", "flow_setting", "completed_threads",
        "migrations",
    ):
        np.testing.assert_array_equal(
            getattr(a, field), getattr(b, field), err_msg=field
        )
    fa = np.asarray(a.forecast_tmax)
    fb = np.asarray(b.forecast_tmax)
    assert np.all((np.isnan(fa) & np.isnan(fb)) | (fa == fb))
    assert a.sojourn_sum == b.sojourn_sum
    assert a.sojourn_count == b.sojourn_count
    assert a.retrain_count == b.retrain_count


class TestStepEquivalence:
    def test_manual_step_loop_equals_run(self):
        """run() is a thin loop: stepping manually produces the exact
        same series as the one-shot path."""
        reference = simulate(_config())
        sim = Simulator(_config())
        states = []
        while not sim.finished:
            states.append(sim.step())
        _assert_results_identical(sim.result(), reference)
        assert len(states) == sim.interval_count
        assert states[-1].done and not states[0].done

    def test_interval_state_matches_recorded_series(self):
        sim = Simulator(_config())
        result = None
        for k in range(3):
            state = sim.step()
            assert isinstance(state, IntervalState)
            assert state.index == k
            result = sim.result()
            assert result.tmax[k] == state.tmax
            assert result.flow_setting[k] == state.flow_setting
            assert result.times[k] == pytest.approx(state.time)
        assert len(result.times) == 3  # The probe is truncated.

    def test_step_past_end_raises(self):
        config = _config(duration=0.2)  # Two intervals.
        sim = Simulator(config)
        sim.run()
        assert sim.finished
        with pytest.raises(ConfigurationError, match="already ran"):
            sim.step()


class TestObservers:
    def test_observer_streams_every_interval(self):
        seen = []

        class Collect:
            def on_interval(self, state):
                seen.append(state.index)

        config = _config(duration=1.0)
        Simulator(config, observers=[Collect()]).run()
        assert seen == list(range(10))

    def test_plain_callable_observer(self):
        seen = []
        Simulator(_config(duration=0.5), observers=[
            lambda state: seen.append(state.tmax)
        ]).run()
        assert len(seen) == 5

    def test_early_stop_truncates_result(self):
        class StopAfter:
            def __init__(self, n):
                self.n = n

            def on_interval(self, state):
                return state.index + 1 >= self.n

        sim = Simulator(_config(), observers=[StopAfter(4)])
        result = sim.run()
        assert len(result.times) == 4
        assert not sim.finished
        # The truncated prefix equals the full run's prefix exactly.
        full = simulate(_config())
        np.testing.assert_array_equal(result.tmax, full.tmax[:4])

    def test_all_observers_see_interval_even_when_one_stops(self):
        calls = {"a": 0, "b": 0}
        sim = Simulator(_config(duration=1.0))
        sim.add_observer(lambda s: calls.__setitem__("a", calls["a"] + 1) or True)
        sim.add_observer(lambda s: calls.__setitem__("b", calls["b"] + 1))
        sim.run()
        assert calls == {"a": 1, "b": 1}  # No short-circuit, then stop.


class TestRegistryDispatch:
    def test_registry_only_components_run(self):
        """RR + PID exist only as registry keys — no enum members — and
        the engine runs them without any special-casing."""
        result = simulate(_config(
            policy="RR",
            controller="pid",
            controller_params={"kp": 2.0},
            duration=1.0,
        ))
        assert len(result.times) == 10
        assert result.flow_setting.min() >= 0

    def test_persistence_forecaster_matches_disabled_forecast(self):
        """The persistence forecaster predicts the last measurement, so
        with the prediction guard it must behave exactly like the
        forecast_enabled=False ablation."""
        base = dict(policy="TALB", benchmark_name="Web-med", duration=2.0)
        persist = simulate(_config(forecaster="persistence", **base))
        disabled = simulate(_config(forecast_enabled=False, **base))
        np.testing.assert_array_equal(persist.flow_setting, disabled.flow_setting)
        np.testing.assert_array_equal(persist.tmax, disabled.tmax)

    def test_no_isinstance_dispatch_left_in_engine(self):
        """The acceptance criterion, checked literally."""
        import inspect

        import repro.sim.engine as engine

        assert "isinstance(" not in inspect.getsource(engine)
