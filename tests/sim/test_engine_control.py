"""Controller-engine interaction details."""

import pytest

from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import (
    burst_floor_setting,
    characterized_table,
    simulate,
)


class TestCharacterizationGuard:
    def test_guard_raises_required_settings(self):
        """A larger guard band makes the LUT more conservative: the
        average pump setting can only rise."""
        results = {}
        for guard in (0.0, 3.0):
            config = SimulationConfig(
                benchmark_name="Database",
                policy=PolicyKind.TALB,
                cooling=CoolingMode.LIQUID_VARIABLE,
                duration=8.0,
                characterization_guard=guard,
            )
            results[guard] = simulate(config)
        assert (
            results[3.0].mean_flow_setting()
            >= results[0.0].mean_flow_setting() - 1e-9
        )

    def test_burst_floor_is_cached_and_sane(self):
        from repro.geometry.stack import CoolingKind
        from repro.power.components import PowerModel
        from repro.power.leakage import LeakageModel
        from repro.sim.system import ThermalSystem

        config = SimulationConfig(
            benchmark_name="gzip",
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=1.0,
        )
        system = ThermalSystem(2, CoolingKind.LIQUID)
        model = PowerModel(system.stack, leakage=LeakageModel())
        floor_a = burst_floor_setting(system, model, config)
        floor_b = burst_floor_setting(system, model, config)
        assert floor_a == floor_b
        assert 0 <= floor_a < system.pump.n_settings


class TestPumpTransitionsInRuns:
    def test_variable_run_starts_at_max_and_descends(self):
        """The engine starts the pump at the safe maximum; on a light
        workload the commanded setting must come down within the first
        seconds (after the hysteresis-guarded decision)."""
        config = SimulationConfig(
            benchmark_name="MPlayer",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=6.0,
        )
        result = simulate(config)
        assert result.flow_setting[0] <= 4
        assert result.flow_setting[-1] < 4

    def test_pump_power_tracks_commanded_setting(self):
        config = SimulationConfig(
            benchmark_name="Database",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=6.0,
        )
        result = simulate(config)
        from repro.pump.laing_ddc import laing_ddc

        pump = laing_ddc(3)
        for k in range(len(result.times)):
            setting = int(result.flow_setting[k])
            assert result.pump_power[k] == pytest.approx(
                pump.setting(setting).power, rel=1e-6
            )


class TestTableCache:
    def test_characterization_shared_between_runs(self):
        from repro.geometry.stack import CoolingKind
        from repro.power.components import PowerModel
        from repro.power.leakage import LeakageModel
        from repro.sim.system import ThermalSystem

        config = SimulationConfig(
            benchmark_name="gzip",
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=1.0,
        )
        system = ThermalSystem(2, CoolingKind.LIQUID)
        model = PowerModel(system.stack, leakage=LeakageModel())
        table_a = characterized_table(system, model, config)
        table_b = characterized_table(system, model, config)
        assert table_a is table_b
