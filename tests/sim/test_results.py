"""Simulation result containers and derived quantities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_result


class TestDerivedQuantities:
    def test_chip_energy_integrates_power(self):
        r = make_result(np.full(10, 70.0), chip_power=np.full(10, 30.0))
        assert r.chip_energy() == pytest.approx(30.0 * 10 * 0.1)

    def test_pump_energy(self):
        r = make_result(np.full(10, 70.0), pump_power=np.full(10, 21.0))
        assert r.pump_energy() == pytest.approx(21.0)

    def test_total_energy(self):
        r = make_result(
            np.full(4, 70.0),
            chip_power=np.full(4, 30.0),
            pump_power=np.full(4, 10.0),
        )
        assert r.total_energy() == pytest.approx(r.chip_energy() + r.pump_energy())

    def test_throughput(self):
        r = make_result(np.full(10, 70.0), completed=np.full(10, 3))
        assert r.throughput() == pytest.approx(30.0 / 1.0)

    def test_time_above(self):
        r = make_result(np.array([80.0, 86.0, 90.0, 70.0]))
        assert r.time_above(85.0) == pytest.approx(0.5)

    def test_peak_temperature(self):
        r = make_result(np.array([70.0, 91.5, 80.0]))
        assert r.peak_temperature() == pytest.approx(91.5)

    def test_mean_flow_setting_ignores_air(self):
        r = make_result(np.full(4, 70.0))
        assert np.isnan(r.mean_flow_setting())

    def test_interval(self):
        r = make_result(np.full(5, 70.0), interval=0.1)
        assert r.interval == pytest.approx(0.1)


class TestValidation:
    def test_rejects_length_mismatch(self):
        make_result(np.full(5, 70.0))
        with pytest.raises(ConfigurationError):
            make_result(np.full(5, 70.0), chip_power=np.ones(3))
