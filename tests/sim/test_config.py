"""Simulation configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig


class TestValidation:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.n_cores == 8

    def test_four_layer_has_16_cores(self):
        assert SimulationConfig(n_layers=4).n_cores == 16

    def test_rejects_bad_layers(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n_layers=3)

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(duration=0.0)

    def test_rejects_non_multiple_interval(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(quantum=0.03, sampling_interval=0.1)

    def test_rejects_interval_below_quantum(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(quantum=0.2, sampling_interval=0.1)

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(Exception):
            SimulationConfig(benchmark_name="SPECjbb")

    def test_spec_property(self):
        assert SimulationConfig(benchmark_name="gzip").spec.name == "gzip"

    @pytest.mark.parametrize("kw", [
        {"nx": 0}, {"ny": 0}, {"nx": -4}, {"nx": 2.5}, {"nx": True},
    ])
    def test_rejects_bad_grid_resolution(self, kw):
        with pytest.raises(ConfigurationError, match="nx and ny"):
            SimulationConfig(**kw)

    @pytest.mark.parametrize("seed", [-1, 0.5, True])
    def test_rejects_bad_seed(self, seed):
        with pytest.raises(ConfigurationError, match="seed"):
            SimulationConfig(seed=seed)

    def test_rejects_non_cooling_mode(self):
        with pytest.raises(ConfigurationError, match="cooling"):
            SimulationConfig(cooling="Var")


class TestRegistryKeys:
    def test_enum_and_string_spellings_are_one_config(self):
        by_enum = SimulationConfig(
            policy=PolicyKind.MIGRATION, controller="LUT"
        )
        by_key = SimulationConfig(policy="mig", controller="lut")
        assert by_enum == by_key
        assert hash(by_enum) == hash(by_key)
        assert by_enum.policy == "Mig"

    def test_registry_only_components_construct(self):
        config = SimulationConfig(
            policy="RR", controller="pid", controller_params={"kp": 1}
        )
        assert config.policy == "RR"
        assert config.controller == "pid"
        # Params are coerced (int -> float) and frozen.
        assert config.controller_params == {"kp": 1.0}
        with pytest.raises(TypeError):
            config.controller_params["kp"] = 2.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            SimulationConfig(policy="FIFO")
        with pytest.raises(ConfigurationError, match="unknown flow controller"):
            SimulationConfig(controller="bangbang")
        with pytest.raises(ConfigurationError, match="unknown forecaster"):
            SimulationConfig(forecaster="oracle")

    def test_undeclared_param_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            SimulationConfig(policy="LB", policy_params={"bogus": 1})

    def test_param_bounds_enforced(self):
        with pytest.raises(ConfigurationError, match=">="):
            SimulationConfig(policy="LB", policy_params={"threshold": 0})

    def test_non_mapping_params_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            SimulationConfig(policy_params=3)


class TestLabels:
    def test_figure_style_label(self):
        config = SimulationConfig(
            policy=PolicyKind.TALB, cooling=CoolingMode.LIQUID_VARIABLE
        )
        assert config.label() == "TALB (Var)"

    def test_cooling_is_liquid(self):
        assert CoolingMode.LIQUID_MAX.is_liquid
        assert CoolingMode.LIQUID_VARIABLE.is_liquid
        assert not CoolingMode.AIR.is_liquid
