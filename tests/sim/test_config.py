"""Simulation configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig


class TestValidation:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.n_cores == 8

    def test_four_layer_has_16_cores(self):
        assert SimulationConfig(n_layers=4).n_cores == 16

    def test_rejects_bad_layers(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n_layers=3)

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(duration=0.0)

    def test_rejects_non_multiple_interval(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(quantum=0.03, sampling_interval=0.1)

    def test_rejects_interval_below_quantum(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(quantum=0.2, sampling_interval=0.1)

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(Exception):
            SimulationConfig(benchmark_name="SPECjbb")

    def test_spec_property(self):
        assert SimulationConfig(benchmark_name="gzip").spec.name == "gzip"


class TestLabels:
    def test_figure_style_label(self):
        config = SimulationConfig(
            policy=PolicyKind.TALB, cooling=CoolingMode.LIQUID_VARIABLE
        )
        assert config.label() == "TALB (Var)"

    def test_cooling_is_liquid(self):
        assert CoolingMode.LIQUID_MAX.is_liquid
        assert CoolingMode.LIQUID_VARIABLE.is_liquid
        assert not CoolingMode.AIR.is_liquid
