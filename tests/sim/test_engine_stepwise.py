"""Engine integration of the stepwise (prior-work) controller."""

import numpy as np
import pytest

from repro.sim.config import ControllerKind, CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate


@pytest.fixture(scope="module")
def runs():
    out = {}
    for kind in (ControllerKind.LUT, ControllerKind.STEPWISE):
        config = SimulationConfig(
            benchmark_name="Database",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=8.0,
            controller=kind,
        )
        out[kind] = simulate(config)
    return out


class TestStepwiseIntegration:
    def test_both_controllers_vary_the_flow(self, runs):
        for result in runs.values():
            settings = result.flow_setting[result.flow_setting >= 0]
            assert settings.min() < settings.max()

    def test_stepwise_moves_one_setting_at_a_time(self, runs):
        settings = runs[ControllerKind.STEPWISE].flow_setting
        steps = np.abs(np.diff(settings[settings >= 0]))
        assert steps.max() <= 1

    def test_lut_holds_target(self, runs):
        assert runs[ControllerKind.LUT].peak_temperature() <= 80.5

    def test_controllers_differ(self, runs):
        a = runs[ControllerKind.LUT].flow_setting
        b = runs[ControllerKind.STEPWISE].flow_setting
        assert not np.array_equal(a, b)
