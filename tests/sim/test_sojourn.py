"""Thread sojourn-time accounting and its sensitivity to migration."""

import pytest

from repro.metrics.performance import normalized_sojourn
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate


@pytest.fixture(scope="module")
def air_runs():
    out = {}
    for policy in (PolicyKind.LB, PolicyKind.MIGRATION):
        config = SimulationConfig(
            benchmark_name="Web-high",
            policy=policy,
            cooling=CoolingMode.AIR,
            duration=8.0,
        )
        out[policy] = simulate(config)
    return out


class TestSojourn:
    def test_sojourn_recorded(self, air_runs):
        for result in air_runs.values():
            assert result.sojourn_count > 0
            assert result.mean_sojourn_time() > 0.0

    def test_sojourn_at_least_service_time(self, air_runs):
        """Sojourn = waiting + service; the mean must exceed the mean
        thread length (~0.15 s)."""
        for result in air_runs.values():
            assert result.mean_sojourn_time() > 0.05

    def test_migration_inflates_sojourn(self, air_runs):
        """The migration penalty (extra work + queueing behind the
        evacuated thread) lengthens sojourn on a hot workload even
        when the completion count barely moves."""
        ratio = normalized_sojourn(
            air_runs[PolicyKind.MIGRATION], air_runs[PolicyKind.LB]
        )
        assert ratio > 1.0

    def test_empty_result_is_nan(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
        from helpers import make_result
        import numpy as np

        r = make_result(np.full(3, 70.0))
        assert r.sojourn_count == 0
        assert r.mean_sojourn_time() != r.mean_sojourn_time()  # NaN.
