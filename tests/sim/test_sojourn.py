"""Thread sojourn-time accounting and its sensitivity to migration."""

import pytest

from repro.metrics.performance import normalized_sojourn
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate
from repro.workload.benchmarks import benchmark
from repro.workload.generator import ThreadTrace
from repro.workload.threads import Thread


def _trace_of(threads, duration, n_cores=8):
    return ThreadTrace(
        threads=tuple(threads),
        duration=duration,
        spec=benchmark("gzip"),
        n_cores=n_cores,
    )


@pytest.fixture(scope="module")
def air_runs():
    out = {}
    for policy in (PolicyKind.LB, PolicyKind.MIGRATION):
        config = SimulationConfig(
            benchmark_name="Web-high",
            policy=policy,
            cooling=CoolingMode.AIR,
            duration=8.0,
        )
        out[policy] = simulate(config)
    return out


class TestSojourn:
    def test_sojourn_recorded(self, air_runs):
        for result in air_runs.values():
            assert result.sojourn_count > 0
            assert result.mean_sojourn_time() > 0.0

    def test_sojourn_at_least_service_time(self, air_runs):
        """Sojourn = waiting + service; the mean must exceed the mean
        thread length (~0.15 s)."""
        for result in air_runs.values():
            assert result.mean_sojourn_time() > 0.05

    def test_migration_inflates_sojourn(self, air_runs):
        """The migration penalty (extra work + queueing behind the
        evacuated thread) lengthens sojourn on a hot workload even
        when the completion count barely moves."""
        ratio = normalized_sojourn(
            air_runs[PolicyKind.MIGRATION], air_runs[PolicyKind.LB]
        )
        assert ratio > 1.0

    def test_midquantum_arrival_cannot_run_before_arriving(self):
        """Regression: a thread arriving mid-quantum used to be
        executed from the quantum start, so a short thread could
        complete before its own arrival time and push the sojourn sum
        negative. With the clamp, a lone thread's sojourn is exactly
        its service time."""
        config = SimulationConfig(
            benchmark_name="gzip",
            policy=PolicyKind.LB,
            cooling=CoolingMode.AIR,
            duration=0.2,
        )
        # Arrives 5 ms into the second 10 ms quantum; 1 ms of work. The
        # old accounting recorded completion at 0.011 s < arrival.
        trace = _trace_of([Thread(0, 0.015, 0.001)], config.duration)
        result = simulate(config, trace=trace)
        assert result.sojourn_count == 1
        assert result.sojourn_sum >= 0.0
        assert result.mean_sojourn_time() == pytest.approx(0.001)

    def test_midquantum_arrival_only_gets_the_remaining_quantum(self):
        """A thread landing mid-quantum may only use the post-arrival
        fraction, so work spilling past the quantum end finishes in the
        next quantum and the lone-thread sojourn equals the length."""
        config = SimulationConfig(
            benchmark_name="gzip",
            policy=PolicyKind.LB,
            cooling=CoolingMode.AIR,
            duration=0.2,
        )
        # Arrives at 15 ms needing 8 ms: 5 ms fit in quantum 1, the
        # remaining 3 ms run in quantum 2 -> completion at 23 ms.
        trace = _trace_of([Thread(0, 0.015, 0.008)], config.duration)
        result = simulate(config, trace=trace)
        assert result.sojourn_count == 1
        assert result.mean_sojourn_time() == pytest.approx(0.008)

    def test_no_negative_sojourns_across_table2(self):
        """Every Table II workload has mid-quantum arrivals; the engine
        now raises on any negative sojourn, so a clean run plus a
        non-negative sum is the regression guarantee."""
        from repro.workload.benchmarks import TABLE_II

        for name in TABLE_II:
            config = SimulationConfig(
                benchmark_name=name,
                policy=PolicyKind.LB,
                cooling=CoolingMode.AIR,
                duration=2.0,
            )
            result = simulate(config)
            assert result.sojourn_sum >= 0.0, name
            if result.sojourn_count:
                assert result.mean_sojourn_time() > 0.0, name

    def test_empty_result_is_nan(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
        from helpers import make_result
        import numpy as np

        r = make_result(np.full(3, 70.0))
        assert r.sojourn_count == 0
        assert r.mean_sojourn_time() != r.mean_sojourn_time()  # NaN.
