"""Calibration sweep utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.calibration import (
    _bisect,
    calibrate_air_scale,
    calibrate_liquid_scale,
)


class TestBisect:
    def test_finds_root_of_monotone_function(self):
        result = _bisect(lambda x: x * x, target=9.0, lo=0.0, hi=10.0, tolerance=1e-6)
        assert result == pytest.approx(3.0, abs=1e-3)

    def test_rejects_unreachable_target(self):
        with pytest.raises(ConfigurationError):
            _bisect(lambda x: x, target=100.0, lo=0.0, hi=1.0, tolerance=1e-6)


@pytest.mark.slow
class TestFullCalibration:
    def test_liquid_scale_reproduces_default(self):
        scale = calibrate_liquid_scale(n_layers=2)
        assert scale == pytest.approx(4.5, abs=0.35)

    def test_air_scale_reproduces_default(self):
        scale = calibrate_air_scale(n_layers=2)
        assert scale == pytest.approx(2.9, abs=0.3)
