"""Krylov-vs-exact accuracy and factorization-reuse guarantees.

``TestKrylovAccuracySmoke`` is the CI-gating accuracy smoke: a small
``thermal_params`` sweep run through both solver tiers must agree
within the documented :data:`KRYLOV_TEMPERATURE_TOLERANCE`, and the
krylov campaign must perform strictly fewer LU factorizations than it
has design points (the whole point of the tier).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import BatchRunner
from repro.sim.cache import CharacterizationCache, clear_system_memo
from repro.sim.config import CoolingMode, SimulationConfig
from repro.sim.system import ThermalSystem
from repro.thermal.rc_network import ThermalParams
from repro.thermal.solver import (
    KRYLOV_TEMPERATURE_TOLERANCE,
    KrylovSteadySolver,
    KrylovTransientSolver,
    SteadyStateSolver,
    TransientSolver,
    clear_neighbor_cache,
    factorization_count,
    krylov_stats,
)

N_POINTS = 6


def _sweep_configs(solver: str) -> list:
    """A thermal-parameter sweep where every design point is a distinct
    network: RR policy + Max cooling keep characterization out of the
    picture, so the factorization counters measure the solvers alone."""
    return [
        SimulationConfig(
            policy="RR",
            cooling=CoolingMode.LIQUID_MAX,
            nx=16,
            ny=16,
            duration=2.0,
            solver=solver,
            thermal_params=ThermalParams(resistance_scale=4.0 + 0.1 * i),
        )
        for i in range(N_POINTS)
    ]


def _campaign(solver: str):
    """Run the sweep cold; returns (results, factorizations, stats delta)."""
    clear_system_memo()
    clear_neighbor_cache()
    before_f = factorization_count()
    before_s = krylov_stats()
    batch = BatchRunner(
        _sweep_configs(solver), cohort="auto", cache=CharacterizationCache()
    )
    results = [run.result for run in batch.run().runs]
    stats = {
        key: value - before_s[key] for key, value in krylov_stats().items()
    }
    return results, factorization_count() - before_f, stats


class TestKrylovAccuracySmoke:
    """CI-gating: krylov agrees with exact and reuses factorizations."""

    @pytest.fixture(scope="class")
    def campaigns(self):
        exact = _campaign("exact")
        krylov = _campaign("krylov")
        clear_system_memo()
        clear_neighbor_cache()
        return exact, krylov

    def test_max_temperature_within_documented_tolerance(self, campaigns):
        (exact_results, _, _), (krylov_results, _, _) = campaigns
        worst = 0.0
        for e, k in zip(exact_results, krylov_results):
            worst = max(worst, float(np.abs(e.tmax - k.tmax).max()))
            worst = max(
                worst,
                float(np.abs(e.unit_temperatures - k.unit_temperatures).max()),
            )
        assert worst < KRYLOV_TEMPERATURE_TOLERANCE

    def test_krylov_factorizes_fewer_than_design_points(self, campaigns):
        (_, exact_f, _), (_, krylov_f, stats) = campaigns
        # Exact pays steady + transient per distinct network.
        assert exact_f == 2 * N_POINTS
        # Krylov factorizes the first design point only; every later
        # point preconditions off it.
        assert krylov_f < N_POINTS
        assert stats["preconditioner_hits"] > 0
        assert stats["fallbacks"] == 0

    def test_exact_campaign_never_iterates(self, campaigns):
        (_, _, exact_stats), _ = campaigns
        assert exact_stats["gmres_solves"] == 0
        assert exact_stats["direct_solves"] == 0


class TestKrylovVariableFlow:
    def test_var_controller_stays_close_to_exact(self):
        # The controller quantizes pump settings, so bitwise agreement
        # is not guaranteed under Var — but the trajectories must stay
        # well inside the 2 K hysteresis band of each other.
        def run(solver):
            clear_system_memo()
            clear_neighbor_cache()
            config = SimulationConfig(
                policy="RR", nx=16, ny=16, duration=2.0, solver=solver
            )
            batch = BatchRunner([config], cache=CharacterizationCache())
            return batch.run().runs[0].result

        exact, krylov = run("exact"), run("krylov")
        assert float(np.abs(exact.tmax - krylov.tmax).max()) < 0.5
        np.testing.assert_array_equal(exact.flow_setting, krylov.flow_setting)


class TestSolverModeSelection:
    def test_config_validates_solver(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(solver="superlu")

    def test_system_validates_solver(self):
        with pytest.raises(ConfigurationError):
            ThermalSystem(nx=4, ny=4, solver="superlu")

    def test_system_returns_mode_matched_solvers(self):
        clear_neighbor_cache()
        exact_sys = ThermalSystem(nx=4, ny=4)
        assert isinstance(exact_sys.transient_solver(0, 0.1), TransientSolver)
        assert isinstance(exact_sys.steady_solver(0), SteadyStateSolver)
        krylov_sys = ThermalSystem(nx=4, ny=4, solver="krylov")
        assert isinstance(
            krylov_sys.transient_solver(0, 0.1), KrylovTransientSolver
        )
        assert isinstance(krylov_sys.steady_solver(0), KrylovSteadySolver)
        # Per-call override wins over the system-wide tier and caches
        # separately.
        assert isinstance(
            exact_sys.transient_solver(0, 0.1, solver="krylov"),
            KrylovTransientSolver,
        )
        assert isinstance(exact_sys.transient_solver(0, 0.1), TransientSolver)
        clear_neighbor_cache()
