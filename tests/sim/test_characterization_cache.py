"""The explicit characterization cache: pump-aware keys, pickling, warm-up."""

import pickle

from repro.geometry.stack import CoolingKind
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.pump.laing_ddc import PumpModel, laing_ddc
from repro.sim.cache import CharacterizationCache, system_key
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.system import ThermalSystem


def _liquid_config(**overrides):
    defaults = dict(
        benchmark_name="gzip",
        policy=PolicyKind.TALB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _system_with(pump=None):
    return ThermalSystem(2, CoolingKind.LIQUID, pump=pump)


class TestPumpAwareKeys:
    def test_same_pump_shares_one_table(self):
        cache = CharacterizationCache()
        config = _liquid_config()
        sys_a, sys_b = _system_with(), _system_with()
        model_a = PowerModel(sys_a.stack, leakage=LeakageModel())
        model_b = PowerModel(sys_b.stack, leakage=LeakageModel())
        table_a = cache.table(sys_a, model_a, config)
        table_b = cache.table(sys_b, model_b, config)
        assert table_a is table_b
        assert len(cache.tables) == 1

    def test_different_pumps_get_distinct_tables(self):
        """Regression: the old module-level cache keyed only on the
        config, so a second system with a different pump silently
        reused the first pump's characterized flow table."""
        cache = CharacterizationCache()
        config = _liquid_config()
        stock = _system_with()
        upsized = _system_with(
            pump=PumpModel(
                settings_lh=(150.0, 300.0, 450.0, 600.0, 750.0), n_cavities=3
            )
        )
        model_s = PowerModel(stock.stack, leakage=LeakageModel())
        model_u = PowerModel(upsized.stack, leakage=LeakageModel())
        table_s = cache.table(stock, model_s, config)
        table_u = cache.table(upsized, model_u, config)
        assert len(cache.tables) == 2
        assert table_s is not table_u
        assert table_s.char.per_cavity_flows != table_u.char.per_cavity_flows

    def test_pump_signature_drives_the_key(self):
        config = _liquid_config()
        key_stock = system_key(config, CoolingKind.LIQUID, laing_ddc(3).signature())
        key_same = system_key(config, CoolingKind.LIQUID, laing_ddc(3).signature())
        key_other = system_key(config, CoolingKind.LIQUID, laing_ddc(5).signature())
        assert key_stock == key_same
        assert key_stock != key_other

    def test_air_system_keys_have_no_pump(self):
        config = SimulationConfig(
            benchmark_name="gzip", cooling=CoolingMode.AIR, duration=1.0
        )
        cache = CharacterizationCache()
        system = ThermalSystem(2, CoolingKind.AIR)
        weights = cache.thermal_weights(system, -1, config, CoolingKind.AIR)
        (key,) = cache.weight_sets
        assert key[7] is None  # pump signature slot
        assert weights is cache.thermal_weights(system, -1, config, CoolingKind.AIR)


class TestWarmAndPickle:
    def test_warm_covers_a_variable_flow_talb_run(self):
        config = _liquid_config()
        cache = CharacterizationCache().warm([config])
        warmed = cache.stats()
        assert warmed["tables"] == 1
        assert warmed["floors"] == 1
        assert warmed["weight_sets"] == laing_ddc(3).n_settings
        # A simulation drawing from the warmed cache adds nothing new.
        Simulator(config, cache=cache).run()
        assert cache.stats() == warmed

    def test_warmed_cache_pickles(self):
        cache = CharacterizationCache().warm([_liquid_config()])
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.stats() == cache.stats()
        assert set(clone.tables) == set(cache.tables)

    def test_merge_first_writer_wins(self):
        config = _liquid_config()
        a = CharacterizationCache().warm([config])
        b = CharacterizationCache().warm([config])
        table_a = next(iter(a.tables.values()))
        a.merge(b)
        assert a.stats() == b.stats()
        assert next(iter(a.tables.values())) is table_a

    def test_clear_and_len(self):
        cache = CharacterizationCache().warm([_liquid_config()])
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0


class TestEngineDelegation:
    def test_module_helpers_share_the_default_cache(self):
        from repro.sim import engine

        config = _liquid_config()
        system = _system_with()
        model = PowerModel(system.stack, leakage=LeakageModel())
        table_a = engine.characterized_table(system, model, config)
        table_b = engine.default_cache().table(system, model, config)
        assert table_a is table_b
