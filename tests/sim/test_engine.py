"""End-to-end engine behavior on short runs."""

import numpy as np
import pytest

from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate

DURATION = 6.0


def run(policy=PolicyKind.LB, cooling=CoolingMode.LIQUID_MAX, bench="Web-med", **kw):
    config = SimulationConfig(
        benchmark_name=bench,
        policy=policy,
        cooling=cooling,
        duration=DURATION,
        **kw,
    )
    return simulate(config)


@pytest.fixture(scope="module")
def lb_max():
    return run()


@pytest.fixture(scope="module")
def talb_var():
    return run(policy=PolicyKind.TALB, cooling=CoolingMode.LIQUID_VARIABLE)


@pytest.fixture(scope="module")
def lb_air():
    return run(cooling=CoolingMode.AIR)


class TestTimeSeriesShape:
    def test_interval_count(self, lb_max):
        assert len(lb_max.times) == int(DURATION / 0.1)

    def test_temperatures_finite_and_physical(self, lb_max):
        assert np.all(np.isfinite(lb_max.tmax))
        assert np.all(lb_max.tmax > 40.0)
        assert np.all(lb_max.tmax < 120.0)

    def test_cell_tmax_bounds_sensor_tmax(self, lb_max):
        assert np.all(lb_max.tmax_cell >= lb_max.tmax - 1e-9)

    def test_core_matrix_shape(self, lb_max):
        assert lb_max.core_temperatures.shape == (len(lb_max.times), 8)

    def test_chip_power_positive(self, lb_max):
        assert np.all(lb_max.chip_power > 5.0)


class TestCoolingModes:
    def test_max_flow_constant_setting(self, lb_max):
        assert np.all(lb_max.flow_setting == 4)
        assert np.allclose(lb_max.pump_power, 21.0, rtol=1e-3)

    def test_air_has_no_pump(self, lb_air):
        assert np.all(lb_air.flow_setting == -1)
        assert np.all(lb_air.pump_power == 0.0)

    def test_variable_flow_saves_pump_energy(self, lb_max, talb_var):
        assert talb_var.pump_energy() < lb_max.pump_energy()

    def test_variable_flow_holds_target(self, talb_var):
        """The headline guarantee: T_max stays below 80 degC."""
        assert talb_var.peak_temperature() <= 80.5

    def test_variable_flow_setting_varies_or_saturates_low(self, talb_var):
        settings = talb_var.flow_setting
        assert settings.min() < 4  # Came down from the safe start.


class TestSchedulingBehaviour:
    def test_throughput_similar_across_policies(self, lb_max, talb_var):
        """'Most policies ... have a similar throughput'."""
        assert talb_var.throughput() == pytest.approx(lb_max.throughput(), rel=0.05)

    def test_all_offered_threads_complete_on_low_util(self):
        r = run(bench="gzip")
        # gzip at 9 % utilization: every thread finishes within the run.
        from repro.workload.benchmarks import benchmark
        from repro.workload.generator import WorkloadGenerator

        trace = WorkloadGenerator(benchmark("gzip"), n_cores=8, seed=0).generate(
            DURATION
        )
        arrived_early = sum(1 for t in trace.threads if t.arrival < DURATION - 1.0)
        assert r.total_completed() >= arrived_early * 0.9

    def test_determinism(self):
        a = run(seed=5)
        b = run(seed=5)
        assert np.allclose(a.tmax, b.tmax)
        assert a.total_completed() == b.total_completed()

    def test_seed_changes_trace(self):
        a = run(seed=1)
        b = run(seed=2)
        assert not np.allclose(a.tmax, b.tmax)


class TestDpmInteraction:
    def test_dpm_cuts_chip_energy_on_idle_workload(self):
        busy = run(bench="MPlayer", dpm_enabled=False)
        sleepy = run(bench="MPlayer", dpm_enabled=True)
        assert sleepy.chip_energy() < busy.chip_energy()

    def test_dpm_increases_thermal_variation(self):
        """Sleep/wake transitions create the temperature swings the
        Figure 7 study measures."""
        busy = run(bench="Database", dpm_enabled=False)
        sleepy = run(bench="Database", dpm_enabled=True)
        spread_busy = (
            busy.core_temperatures.max(axis=1) - busy.core_temperatures.min(axis=1)
        ).mean()
        spread_sleepy = (
            sleepy.core_temperatures.max(axis=1)
            - sleepy.core_temperatures.min(axis=1)
        ).mean()
        assert spread_sleepy > spread_busy


class TestForecast:
    def test_forecast_recorded(self, talb_var):
        assert np.isfinite(talb_var.forecast_tmax[20:]).all()

    def test_forecast_tracks_tmax(self, talb_var):
        """After warmup the forecast follows the actual signal."""
        err = np.abs(talb_var.forecast_tmax[50:] - talb_var.tmax[50:])
        assert np.median(err) < 2.0
