"""Full-engine golden runs pinned against pre-refactor fixtures.

The JSON fixtures under ``tests/data/`` were produced by the seed
(pre-vectorization, PR 2) engine: short fig6-style runs covering
liquid variable-flow (steady and with a pump transition), air cooling,
and the 4-layer stack. The vectorized engine must reproduce every
recorded series to <= 1e-9 and every discrete series (pump settings,
completions, migrations) exactly.

The golden configs deliberately use queue-length-driven policies (LB,
migration below its threshold): their decisions are robust to
sub-ulp temperature perturbations. TALB's dispatch argmin breaks
mirror-core ties on ~1e-14 weight noise, so its *trajectories* are not
refactor-stable; TALB correctness is pinned instead by the exact
operator/assembly equivalence suite
(``tests/thermal/test_vector_equivalence.py``).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.io.serialize import load_result
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate

DATA = Path(__file__).resolve().parents[1] / "data"

GOLDEN_CASES = {
    "golden_liquid_lb": SimulationConfig(
        benchmark_name="Web-high",
        policy=PolicyKind.LB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=2.0,
        seed=0,
    ),
    "golden_liquid_lb_gzip": SimulationConfig(
        benchmark_name="gzip",
        policy=PolicyKind.LB,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=2.0,
        seed=0,
    ),
    "golden_air_lb": SimulationConfig(
        benchmark_name="Web-med",
        policy=PolicyKind.LB,
        cooling=CoolingMode.AIR,
        duration=2.0,
        seed=0,
    ),
    "golden_liquid_migration_4layer": SimulationConfig(
        benchmark_name="Database",
        policy=PolicyKind.MIGRATION,
        cooling=CoolingMode.LIQUID_VARIABLE,
        duration=2.0,
        seed=1,
        n_layers=4,
    ),
}

FLOAT_SERIES = (
    "times",
    "tmax",
    "tmax_cell",
    "core_temperatures",
    "unit_temperatures",
    "chip_power",
    "pump_power",
    "forecast_tmax",
)
EXACT_SERIES = ("flow_setting", "completed_threads", "migrations")


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_run_matches_pre_refactor(name):
    config = GOLDEN_CASES[name]
    result = simulate(config)
    golden = load_result(DATA / f"{name}.json")

    assert result.unit_names == golden.unit_names
    assert result.core_names == golden.core_names
    assert result.retrain_count == golden.retrain_count
    assert result.sojourn_count == golden.sojourn_count
    assert result.sojourn_sum == pytest.approx(golden.sojourn_sum, abs=1.0e-9)

    for field in EXACT_SERIES:
        np.testing.assert_array_equal(
            getattr(result, field), getattr(golden, field), err_msg=field
        )
    for field in FLOAT_SERIES:
        got = np.asarray(getattr(result, field), dtype=float)
        ref = np.asarray(getattr(golden, field), dtype=float)
        assert got.shape == ref.shape, field
        # NaN-aware (forecast warm-up is NaN) elementwise comparison.
        both_nan = np.isnan(got) & np.isnan(ref)
        close = np.abs(got - ref) <= 1.0e-9
        assert np.all(both_nan | close), (
            f"{field}: max |diff| = {np.nanmax(np.abs(got - ref))}"
        )
