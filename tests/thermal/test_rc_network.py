"""RC network assembly: physics invariants of the conductance matrix."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.geometry.stack import CoolingKind, build_stack
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import SteadyStateSolver

FLOW = units.ml_per_minute(400.0)


@pytest.fixture(scope="module")
def liquid_net():
    grid = ThermalGrid(build_stack(2), nx=10, ny=10)
    return build_network(grid, ThermalParams(), cavity_flows=[FLOW])


@pytest.fixture(scope="module")
def air_net():
    grid = ThermalGrid(build_stack(2, CoolingKind.AIR), nx=10, ny=10)
    return build_network(grid, ThermalParams())


class TestAssemblyValidation:
    def test_liquid_requires_flows(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        with pytest.raises(ConfigurationError):
            build_network(grid, ThermalParams())

    def test_air_rejects_flows(self):
        grid = ThermalGrid(build_stack(2, CoolingKind.AIR), nx=8, ny=8)
        with pytest.raises(ConfigurationError):
            build_network(grid, ThermalParams(), cavity_flows=[FLOW])

    def test_flow_broadcast(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        net = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        assert net.cavity_flows == (FLOW, FLOW, FLOW)

    def test_flow_count_mismatch(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        with pytest.raises(ConfigurationError):
            build_network(grid, ThermalParams(), cavity_flows=[FLOW, FLOW])

    def test_rejects_negative_flow(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        with pytest.raises(ConfigurationError):
            build_network(grid, ThermalParams(), cavity_flows=[-1.0])


class TestMatrixInvariants:
    def test_diagonal_positive(self, liquid_net):
        diag = liquid_net.conductance.diagonal()
        assert np.all(diag > 0.0)

    def test_rows_weakly_diagonally_dominant(self, liquid_net):
        """Row sum >= 0: every node's couplings balance, with boundary
        (inlet/advection) conductance making some rows strictly
        dominant — a passivity condition for the RC network."""
        g = liquid_net.conductance.toarray()
        row_sums = g.sum(axis=1)
        assert np.all(row_sums >= -1.0e-10)

    def test_air_matrix_symmetric(self, air_net):
        """Without advection the network is reciprocal."""
        g = air_net.conductance
        asym = (g - g.T).toarray()
        assert np.abs(asym).max() < 1.0e-12

    def test_liquid_matrix_asymmetric(self, liquid_net):
        """Advection is directed: G must not be symmetric."""
        g = liquid_net.conductance
        asym = np.abs((g - g.T).toarray()).max()
        assert asym > 1.0e-6

    def test_zero_flow_is_symmetric(self):
        """No flow -> no advection -> reciprocal conduction network."""
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        net = build_network(grid, ThermalParams(), cavity_flows=[0.0])
        asym = np.abs((net.conductance - net.conductance.T).toarray()).max()
        assert asym < 1.0e-12

    def test_capacitance_positive(self, liquid_net, air_net):
        assert np.all(liquid_net.capacitance > 0.0)
        assert np.all(air_net.capacitance > 0.0)

    def test_boundary_non_negative(self, liquid_net, air_net):
        assert np.all(liquid_net.boundary >= 0.0)
        assert np.all(air_net.boundary >= 0.0)


class TestSteadyStatePhysics:
    def test_zero_power_settles_at_inlet(self, liquid_net):
        temps = SteadyStateSolver(liquid_net).solve(np.zeros(liquid_net.n_nodes))
        assert np.allclose(temps, 60.0, atol=1.0e-6)

    def test_zero_power_air_settles_at_ambient(self, air_net):
        temps = SteadyStateSolver(air_net).solve(np.zeros(air_net.n_nodes))
        assert np.allclose(temps, 45.0, atol=1.0e-6)

    def test_power_raises_temperature(self, liquid_net):
        grid = liquid_net.grid
        p = grid.power_vector({(0, "core0"): 3.0})
        temps = SteadyStateSolver(liquid_net).solve(p)
        assert grid.unit_temperature(temps, 0, "core0") > 60.0

    def test_superposition(self, liquid_net):
        """The network is linear: responses to power maps add."""
        grid = liquid_net.grid
        solver = SteadyStateSolver(liquid_net)
        p1 = grid.power_vector({(0, "core0"): 3.0})
        p2 = grid.power_vector({(1, "l2_0"): 1.28})
        t0 = solver.solve(np.zeros(liquid_net.n_nodes))
        t1 = solver.solve(p1) - t0
        t2 = solver.solve(p2) - t0
        t12 = solver.solve(p1 + p2) - t0
        assert np.allclose(t12, t1 + t2, atol=1.0e-8)

    def test_more_flow_cools_better(self):
        grid = ThermalGrid(build_stack(2), nx=10, ny=10)
        p = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        tmax = []
        for ml in (150.0, 400.0, 1000.0):
            net = build_network(
                grid, ThermalParams(), cavity_flows=[units.ml_per_minute(ml)]
            )
            temps = SteadyStateSolver(net).solve(p)
            tmax.append(grid.max_die_temperature(temps))
        assert tmax[0] > tmax[1] > tmax[2]

    def test_downstream_cells_hotter(self, liquid_net):
        """Sensible heating: the coolant warms along the channel, so
        die cells above the channel outlet run hotter than the inlet
        side under spatially uniform power (injected per cell to avoid
        floorplan rasterization artifacts)."""
        grid = liquid_net.grid
        p = np.zeros(liquid_net.n_nodes)
        die_nodes = grid.slab_nodes(grid.die_slab_index(0))
        p[die_nodes.ravel()] = 24.0 / die_nodes.size
        temps = SteadyStateSolver(liquid_net).solve(p)
        field = grid.die_temperature_field(temps, 0)
        inlet_side = field[:, 2].mean()
        outlet_side = field[:, -3].mean()
        assert outlet_side > inlet_side

    def test_coolant_warms_monotonically_downstream(self, liquid_net):
        """The cavity fluid temperature is non-decreasing along the
        channel under any non-negative power map."""
        grid = liquid_net.grid
        p = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        temps = SteadyStateSolver(liquid_net).solve(p)
        for s in grid.cavity_slab_indices():
            profile = temps[grid.slab_nodes(s)].mean(axis=0)
            assert np.all(np.diff(profile) >= -1.0e-9)

    def test_energy_balance_through_coolant(self, liquid_net):
        """In steady state all injected power leaves through the
        boundaries; for a liquid stack that is the coolant enthalpy
        flux, i.e. sum(G T) - b = P must hold exactly."""
        grid = liquid_net.grid
        p = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        temps = SteadyStateSolver(liquid_net).solve(p)
        residual = liquid_net.conductance @ temps - liquid_net.boundary - p
        assert np.abs(residual).max() < 1.0e-8


class TestTsvRegion:
    def test_crossbar_cells_conduct_better(self):
        """The TSV-filled crossbar region couples the dies more
        strongly: the fraction of a heated block's own rise that shows
        up on the block straight above is larger under the crossbar
        (copper TSV path) than under a core (plain interlayer)."""
        grid = ThermalGrid(build_stack(2), nx=16, ny=16)
        net = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        solver = SteadyStateSolver(net)

        p_xbar = grid.power_vector({(0, "xbar"): 3.0})
        t_xbar = solver.solve(p_xbar)
        xbar_ratio = (grid.unit_temperature(t_xbar, 1, "xbar") - 60.0) / (
            grid.unit_temperature(t_xbar, 0, "xbar") - 60.0
        )

        p_core = grid.power_vector({(0, "core0"): 3.0})
        t_core = solver.solve(p_core)
        core_ratio = (grid.unit_temperature(t_core, 1, "l2_0") - 60.0) / (
            grid.unit_temperature(t_core, 0, "core0") - 60.0
        )
        assert xbar_ratio > core_ratio

    def test_tsv_mask_changes_network(self):
        """Removing the TSVs (copper -> interlayer conductivity) must
        weaken the die-to-die coupling — the per-cell heterogeneous
        resistivity of Section III-A is live."""
        grid = ThermalGrid(build_stack(2), nx=16, ny=16)
        with_tsv = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        no_tsv = build_network(
            grid,
            ThermalParams(tsv_conductivity=1.0 / 0.25),
            cavity_flows=[FLOW],
        )
        p = grid.power_vector({(0, "xbar"): 3.0})
        t_with = SteadyStateSolver(with_tsv).solve(p)
        t_without = SteadyStateSolver(no_tsv).solve(p)
        rise_with = grid.unit_temperature(t_with, 1, "xbar") - 60.0
        rise_without = grid.unit_temperature(t_without, 1, "xbar") - 60.0
        assert rise_with > rise_without


class TestInletTemperatureValidation:
    def test_accepts_the_operating_band(self):
        for inlet in (20.0, 60.0, 70.0, 120.0):
            assert ThermalParams(inlet_temperature=inlet).inlet_temperature == inlet

    def test_rejects_non_finite_values(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError, match="inlet_temperature"):
                ThermalParams(inlet_temperature=bad)

    def test_rejects_out_of_range_values_with_a_clear_message(self):
        with pytest.raises(ConfigurationError, match="20-70 degC"):
            ThermalParams(inlet_temperature=-40.0)
        with pytest.raises(ConfigurationError, match="20-70 degC"):
            ThermalParams(inlet_temperature=500.0)


class TestInletBoundaryCoupling:
    def test_delta_is_none_at_the_assembled_inlet(self, liquid_net):
        assert liquid_net.inlet_boundary_delta(60.0) is None

    def test_air_network_has_no_advection_rows(self, air_net):
        assert air_net.inlet_boundary_delta(55.0) is None
        assert air_net.coolant_heat_rejected(
            np.full(air_net.n_nodes, 70.0)
        ) == 0.0

    def test_delta_shifts_the_steady_state_by_the_inlet_change(self):
        """Solving with the delta'd RHS equals re-assembling the
        network at the new inlet: the coupling is a pure boundary
        update, no refactorization required."""
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        base = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        moved = build_network(
            grid, ThermalParams(inlet_temperature=55.0), cavity_flows=[FLOW]
        )
        p = grid.power_vector({(0, "core0"): 2.0})
        delta = base.inlet_boundary_delta(55.0)
        assert delta is not None
        t_patched = SteadyStateSolver(base).solve(p + delta)
        t_rebuilt = SteadyStateSolver(moved).solve(p)
        np.testing.assert_allclose(t_patched, t_rebuilt, atol=1e-8)

    def test_heat_rejected_matches_sensible_heat_balance(self):
        """At steady state the coolant picks up exactly the injected
        power (energy conservation through the advection rows)."""
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        net = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        p = grid.power_vector({(0, "core0"): 2.0, (1, "l2_1"): 1.0})
        temps = SteadyStateSolver(net).solve(p)
        assert net.coolant_heat_rejected(temps) == pytest.approx(3.0, rel=1e-6)

    def test_heat_rejected_against_explicit_inlet(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        net = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        temps = np.full(net.n_nodes, 60.0)
        assert net.coolant_heat_rejected(temps) == 0.0
        assert net.coolant_heat_rejected(temps, t_inlet=59.0) > 0.0
