"""Equivalence suite: vectorized thermal hot path vs naive reference.

Pins the array-oriented substrate (PR 3) to the retained loop-based
reference implementations in ``tests/naive_thermal.py``:

* the unit<->cell operators (``power_vector``, ``unit_temperatures``,
  ``core_temperatures``, the maxima) agree *exactly* on random fields;
* the assembled CSR matrices (liquid 2/4-layer, air 2/4-layer) are
  bit-identical — same dense matrix, same boundary and capacitance
  vectors;
* the batched steady characterization path matches the sequential one
  column-for-column.

Together with ``tests/sim/test_golden_runs.py`` (full-engine runs
pinned against pre-refactor fixtures) this verifies that no per-unit
or per-cell Python loop semantics changed while they were vectorized.
"""

import numpy as np
import pytest
from naive_thermal import (
    naive_build_air,
    naive_build_liquid,
    naive_cavity_slab_index,
    naive_core_temperatures,
    naive_die_slab_index,
    naive_max_die_temperature,
    naive_max_unit_temperature,
    naive_power_vector,
    naive_unit_cells,
    naive_unit_temperatures,
)

from repro import units
from repro.geometry.stack import CoolingKind, build_stack
from repro.microchannel.geometry import ChannelGeometry
from repro.microchannel.model import MicrochannelModel
from repro.power.components import PowerModel
from repro.power.leakage import LeakageModel
from repro.sim.system import ThermalSystem
from repro.thermal.grid import ThermalGrid
from repro.thermal.package import AirPackage
from repro.thermal.rc_network import ThermalParams, build_network

FLOW = units.ml_per_minute(400.0)


@pytest.fixture(scope="module", params=["liquid2", "liquid4", "air2"])
def grid(request):
    return {
        "liquid2": lambda: ThermalGrid(build_stack(2, CoolingKind.LIQUID), nx=16, ny=16),
        "liquid4": lambda: ThermalGrid(build_stack(4, CoolingKind.LIQUID), nx=9, ny=13),
        "air2": lambda: ThermalGrid(build_stack(2, CoolingKind.AIR), nx=16, ny=16),
    }[request.param]()


class TestUnitCellOperators:
    def test_unit_cells_match(self, grid):
        for d, die in enumerate(grid.stack.dies):
            for unit in die.floorplan:
                np.testing.assert_array_equal(
                    grid.unit_cells(d, unit.name), naive_unit_cells(grid, d, unit.name)
                )

    def test_power_vector_exact(self, grid):
        rng = np.random.default_rng(42)
        keys = list(grid.unit_keys)
        for trial in range(5):
            # Mix of full maps and sparse subsets, including negatives.
            chosen = keys if trial == 0 else [
                k for k in keys if rng.random() < 0.6
            ]
            powers = {k: float(rng.normal(3.0, 2.0)) for k in chosen}
            vec = grid.power_vector(powers)
            ref = naive_power_vector(grid, powers)
            assert np.array_equal(vec, ref)  # bitwise, no tolerance

    def test_power_vector_from_array_exact(self, grid):
        rng = np.random.default_rng(7)
        p = rng.normal(2.0, 1.0, grid.n_units)
        dense = grid.power_vector_from_array(p)
        ref = naive_power_vector(
            grid, {key: float(p[u]) for u, key in enumerate(grid.unit_keys)}
        )
        assert np.array_equal(dense, ref)

    def test_unit_temperatures_exact(self, grid):
        rng = np.random.default_rng(1)
        for _ in range(3):
            temps = rng.normal(70.0, 8.0, grid.n_nodes)
            got = grid.unit_temperatures(temps)
            ref = naive_unit_temperatures(grid, temps)
            assert set(got) == set(ref)
            for key in ref:
                assert got[key] == ref[key], key

    def test_core_temperatures_exact(self, grid):
        rng = np.random.default_rng(2)
        temps = rng.normal(70.0, 8.0, grid.n_nodes)
        got = grid.core_temperatures(temps)
        ref = naive_core_temperatures(grid, temps)
        assert got == ref

    def test_maxima_exact(self, grid):
        rng = np.random.default_rng(3)
        temps = rng.normal(70.0, 8.0, grid.n_nodes)
        assert grid.max_die_temperature(temps) == naive_max_die_temperature(grid, temps)
        assert grid.max_unit_temperature(temps) == naive_max_unit_temperature(grid, temps)

    def test_unit_temperature_consistent_with_vector(self, grid):
        rng = np.random.default_rng(4)
        temps = rng.normal(70.0, 8.0, grid.n_nodes)
        vec = grid.unit_temperature_vector(temps)
        for u, (d, name) in enumerate(grid.unit_keys):
            assert grid.unit_temperature(temps, d, name) == vec[u]

    def test_core_order_matches_stack(self, grid):
        assert [name for _, name in grid.core_keys] == grid.stack.core_names()

    def test_slab_lookups_match_linear_scan(self, grid):
        for d in range(grid.stack.n_dies):
            assert grid.die_slab_index(d) == naive_die_slab_index(grid, d)
        if grid.stack.cooling is CoolingKind.LIQUID:
            for c in range(grid.stack.n_cavities):
                assert grid.cavity_slab_index(c) == naive_cavity_slab_index(grid, c)


def _assert_networks_identical(a, b):
    ac, bc = a.conductance.tocsr(), b.conductance.tocsr()
    ac.sort_indices()
    bc.sort_indices()
    assert np.array_equal(ac.indptr, bc.indptr)
    assert np.array_equal(ac.indices, bc.indices)
    assert np.array_equal(ac.data, bc.data)  # bitwise
    assert np.array_equal(np.asarray(ac.todense()), np.asarray(bc.todense()))
    assert np.array_equal(a.boundary, b.boundary)
    assert np.array_equal(a.capacitance, b.capacitance)


class TestAssemblyEquivalence:
    @pytest.mark.parametrize("n_layers,nx,ny", [(2, 16, 16), (4, 9, 13)])
    def test_liquid_assembly_identical(self, n_layers, nx, ny):
        grid = ThermalGrid(build_stack(n_layers, CoolingKind.LIQUID), nx=nx, ny=ny)
        params = ThermalParams()
        model = MicrochannelModel(
            geometry=ChannelGeometry(length=grid.stack.width),
            die_height=grid.stack.height,
        )
        flows = tuple([FLOW] * grid.stack.n_cavities)
        vec = build_network(grid, params, cavity_flows=flows, channel_model=model)
        ref = naive_build_liquid(grid, params, flows, model)
        _assert_networks_identical(vec, ref)

    def test_liquid_assembly_zero_flow(self):
        grid = ThermalGrid(build_stack(2, CoolingKind.LIQUID), nx=8, ny=8)
        params = ThermalParams()
        model = MicrochannelModel(
            geometry=ChannelGeometry(length=grid.stack.width),
            die_height=grid.stack.height,
        )
        flows = (0.0, 0.0, 0.0)
        vec = build_network(grid, params, cavity_flows=flows, channel_model=model)
        ref = naive_build_liquid(grid, params, flows, model)
        _assert_networks_identical(vec, ref)

    @pytest.mark.parametrize("n_layers", [2, 4])
    def test_air_assembly_identical(self, n_layers):
        grid = ThermalGrid(build_stack(n_layers, CoolingKind.AIR), nx=16, ny=16)
        params = ThermalParams()
        package = AirPackage()
        vec = build_network(grid, params, package=package)
        ref = naive_build_air(grid, params, package)
        _assert_networks_identical(vec, ref)


class TestPowerVectorEquivalence:
    """``PowerModel.unit_power_vector`` is elementwise identical to the
    per-unit dict path for every state mix."""

    @pytest.mark.parametrize("n_layers", [2, 4])
    def test_vector_matches_dict(self, n_layers):
        from repro.power.components import CoreState

        grid = ThermalGrid(build_stack(n_layers, CoolingKind.LIQUID), nx=8, ny=8)
        model = PowerModel(grid.stack, leakage=LeakageModel())
        rng = np.random.default_rng(11)
        core_names = grid.stack.core_names()
        states_cycle = [CoreState.ACTIVE, CoreState.IDLE, CoreState.SLEEP]
        for trial in range(4):
            core_util = {n: float(rng.uniform(0.0, 1.0)) for n in core_names}
            core_states = {
                n: states_cycle[(i + trial) % 3] for i, n in enumerate(core_names)
            }
            temps = rng.normal(70.0, 6.0, grid.n_units) if trial % 2 else None
            vec = model.unit_power_vector(
                grid.unit_keys, core_util, core_states, 0.4, temps
            )
            ref = model.unit_powers(
                core_util,
                core_states,
                0.4,
                dict(zip(grid.unit_keys, temps.tolist())) if temps is not None else None,
            )
            for u, key in enumerate(grid.unit_keys):
                assert vec[u] == ref[key], key

    def test_vector_without_leakage(self):
        grid = ThermalGrid(build_stack(2, CoolingKind.LIQUID), nx=8, ny=8)
        model = PowerModel(grid.stack, leakage=None)
        core_names = grid.stack.core_names()
        core_util = {n: 0.5 for n in core_names}
        from repro.power.components import CoreState

        core_states = {n: CoreState.ACTIVE for n in core_names}
        vec = model.unit_power_vector(grid.unit_keys, core_util, core_states, 0.5)
        ref = model.unit_powers(core_util, core_states, 0.5)
        for u, key in enumerate(grid.unit_keys):
            assert vec[u] == ref[key]


class TestBatchedCharacterization:
    # SuperLU applies blocked kernels to multiple right-hand sides, so
    # the batched path agrees with sequential solves to LU roundoff
    # (~1e-14 K on ~100 degC fields), not bitwise.
    def test_steady_fields_batch_matches_sequential(self):
        system = ThermalSystem(2, CoolingKind.LIQUID, nx=12, ny=12)
        model = PowerModel(system.stack, leakage=LeakageModel())
        utils = [0.0, 0.3, 0.7, 1.0]
        batch = system.steady_temperature_fields(model, utils, setting_index=2)
        for c, u in enumerate(utils):
            single = system.steady_temperatures(model, u, setting_index=2)
            np.testing.assert_allclose(batch[c], single, rtol=0.0, atol=1.0e-10)

    def test_steady_tmax_batch_matches_scalar(self):
        system = ThermalSystem(2, CoolingKind.LIQUID, nx=12, ny=12)
        model = PowerModel(system.stack, leakage=LeakageModel())
        utils = [0.2, 0.8]
        batch = system.steady_tmax_batch(model, utils, setting_index=1)
        for c, u in enumerate(utils):
            assert batch[c] == pytest.approx(
                system.steady_tmax(model, u, setting_index=1), abs=1.0e-10
            )
