"""Paper-resolution smoke tests.

The paper discretizes at 100 um cells — 107x107 per slab, ~57k nodes
for the 2-layer liquid stack. These tests pin that the vectorized
substrate actually sustains paper-scale grids: a gating 64x64 check
(build + factorize + 10 transient steps under a generous wall-clock
ceiling; CI runs this file as its own named step) and a slow-marked
107x107 assemble/factorize/step smoke.
"""

import time

import numpy as np
import pytest

from repro import units
from repro.geometry.stack import build_stack
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import TransientSolver

FLOW = units.ml_per_minute(400.0)

#: Generous ceilings: the vectorized path runs the 64x64 smoke in ~1 s
#: on a laptop; the ceiling only guards against a reintroduced
#: per-cell Python path (which took minutes at this scale).
CEILING_64 = 60.0


def _run_smoke(n: int, steps: int) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    grid = ThermalGrid(build_stack(2), nx=n, ny=n)
    network = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
    solver = TransientSolver(network, dt=0.1)
    power = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
    state = np.full(network.n_nodes, 60.0)
    for _ in range(steps):
        state = solver.step(state, power)
    return time.perf_counter() - start, state


def test_paper_resolution_smoke_64():
    """Gating: 64x64 network + 10 transient steps inside the ceiling."""
    elapsed, state = _run_smoke(64, steps=10)
    assert np.all(np.isfinite(state))
    assert state.max() > 60.0  # heat actually arrived
    assert elapsed < CEILING_64, f"64x64 smoke took {elapsed:.1f}s"


@pytest.mark.slow
def test_paper_resolution_smoke_107():
    """The paper's grid: 107x107 (57k nodes) assembles and factorizes."""
    grid = ThermalGrid(build_stack(2), nx=107, ny=107)
    assert grid.n_nodes == 5 * 107 * 107
    network = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
    solver = TransientSolver(network, dt=0.1)
    power = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
    state = np.full(network.n_nodes, 60.0)
    state = solver.step(state, power)
    assert np.all(np.isfinite(state))
    assert grid.max_die_temperature(state) > 60.0
