"""ASCII temperature-map rendering."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.geometry.stack import build_stack
from repro.thermal.ascii_map import render_die, render_field, render_stack
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import SteadyStateSolver


class TestRenderField:
    def test_shape(self):
        field = np.linspace(60.0, 90.0, 12).reshape(3, 4)
        art = render_field(field)
        lines = art.splitlines()
        assert len(lines) == 4  # 3 rows + scale legend.
        assert all(len(line) == 4 for line in lines[:3])

    def test_hot_cells_get_heavy_glyphs(self):
        field = np.array([[60.0, 90.0]])
        art = render_field(field).splitlines()[0]
        assert art[0] == " "
        assert art[1] == "@"

    def test_row_zero_printed_last(self):
        field = np.array([[90.0], [60.0]])  # Row 0 hot, row 1 cool.
        lines = render_field(field).splitlines()
        assert lines[0] == " "   # Top row (index 1) first.
        assert lines[1] == "@"   # Bottom row (index 0) last.

    def test_constant_field_does_not_crash(self):
        art = render_field(np.full((2, 2), 70.0))
        assert "70.0" in art

    def test_common_scale(self):
        field = np.array([[70.0]])
        art = render_field(field, t_min=60.0, t_max=90.0)
        assert "60.0" in art and "90.0" in art

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            render_field(np.ones(5))


class TestRenderDieAndStack:
    @pytest.fixture(scope="class")
    def solved(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        net = build_network(
            grid, ThermalParams(), cavity_flows=[units.ml_per_minute(300.0)]
        )
        p = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        return grid, SteadyStateSolver(net).solve(p)

    def test_render_die_has_header(self, solved):
        grid, temps = solved
        art = render_die(grid, temps, 0)
        assert art.startswith("--- die 0")
        assert "left->right" in art

    def test_render_stack_covers_all_dies(self, solved):
        grid, temps = solved
        art = render_stack(grid, temps)
        assert "die 0" in art and "die 1" in art

    def test_core_die_hotter_than_cache_die(self, solved):
        """On a shared scale the powered core die uses heavier glyphs."""
        grid, temps = solved
        art = render_stack(grid, temps)
        die0, die1 = art.split("\n\n")
        heavy = set("#%@")
        count0 = sum(ch in heavy for ch in die0)
        count1 = sum(ch in heavy for ch in die1)
        assert count0 > count1
