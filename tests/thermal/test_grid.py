"""Thermal grid node layout and unit/cell mapping."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.stack import CoolingKind, build_stack
from repro.thermal.grid import SlabKind, ThermalGrid


@pytest.fixture
def liquid_grid():
    return ThermalGrid(build_stack(2), nx=12, ny=12)


@pytest.fixture
def air_grid():
    return ThermalGrid(build_stack(2, CoolingKind.AIR), nx=12, ny=12)


class TestSlabStructure:
    def test_liquid_slab_sequence(self, liquid_grid):
        kinds = [s.kind for s in liquid_grid.slabs]
        assert kinds == [
            SlabKind.CAVITY,
            SlabKind.DIE,
            SlabKind.CAVITY,
            SlabKind.DIE,
            SlabKind.CAVITY,
        ]

    def test_air_slab_sequence(self, air_grid):
        kinds = [s.kind for s in air_grid.slabs]
        assert kinds == [SlabKind.DIE, SlabKind.INTERFACE, SlabKind.DIE]

    def test_liquid_node_count(self, liquid_grid):
        assert liquid_grid.n_nodes == 5 * 12 * 12

    def test_air_node_count_includes_package(self, air_grid):
        assert air_grid.n_nodes == 3 * 12 * 12 + 2  # + spreader + sink.

    def test_four_layer_liquid(self):
        grid = ThermalGrid(build_stack(4), nx=8, ny=8)
        assert len(grid.slabs) == 9  # 4 dies + 5 cavities.
        assert len(grid.cavity_slab_indices()) == 5

    def test_rejects_tiny_grid(self):
        with pytest.raises(GeometryError):
            ThermalGrid(build_stack(2), nx=1, ny=8)


class TestNodeIndexing:
    def test_node_bijection(self, liquid_grid):
        seen = set()
        for s in range(len(liquid_grid.slabs)):
            for j in range(12):
                for i in range(12):
                    seen.add(liquid_grid.node(s, i, j))
        assert len(seen) == liquid_grid.n_nodes

    def test_node_out_of_range(self, liquid_grid):
        with pytest.raises(GeometryError):
            liquid_grid.node(0, 12, 0)

    def test_slab_nodes_shape(self, liquid_grid):
        nodes = liquid_grid.slab_nodes(1)
        assert nodes.shape == (12, 12)
        assert nodes[0, 0] == liquid_grid.node(1, 0, 0)
        assert nodes[3, 5] == liquid_grid.node(1, 5, 3)

    def test_die_slab_lookup(self, liquid_grid):
        assert liquid_grid.die_slab_index(0) == 1
        assert liquid_grid.die_slab_index(1) == 3
        with pytest.raises(GeometryError):
            liquid_grid.die_slab_index(2)

    def test_cavity_slab_lookup(self, liquid_grid):
        assert liquid_grid.cavity_slab_index(0) == 0
        assert liquid_grid.cavity_slab_index(2) == 4


class TestPowerMapping:
    def test_power_vector_conserves_power(self, liquid_grid):
        powers = {(0, "core0"): 3.0, (0, "core5"): 2.0, (1, "l2_1"): 1.28}
        p = liquid_grid.power_vector(powers)
        assert p.sum() == pytest.approx(6.28)

    def test_power_lands_on_die_slab(self, liquid_grid):
        p = liquid_grid.power_vector({(0, "core0"): 3.0})
        die_nodes = liquid_grid.slab_nodes(liquid_grid.die_slab_index(0)).ravel()
        assert p[die_nodes].sum() == pytest.approx(3.0)
        other = np.setdiff1d(np.arange(liquid_grid.n_nodes), die_nodes)
        assert np.all(p[other] == 0.0)

    def test_unit_cells_non_empty_for_all_units(self, liquid_grid):
        for d, die in enumerate(liquid_grid.stack.dies):
            for unit in die.floorplan:
                cells = liquid_grid.unit_cells(d, unit.name)
                assert cells.size > 0

    def test_unknown_unit(self, liquid_grid):
        with pytest.raises(GeometryError):
            liquid_grid.unit_cells(0, "nope")


class TestTemperatureExtraction:
    def test_unit_temperature_is_mean(self, liquid_grid):
        temps = np.zeros(liquid_grid.n_nodes)
        cells = liquid_grid.unit_cells(0, "core0")
        temps[cells] = 42.0
        assert liquid_grid.unit_temperature(temps, 0, "core0") == pytest.approx(42.0)

    def test_core_temperatures_keys(self, liquid_grid):
        temps = np.full(liquid_grid.n_nodes, 50.0)
        cores = liquid_grid.core_temperatures(temps)
        assert set(cores) == {f"core{i}" for i in range(8)}

    def test_max_die_ge_max_unit(self, liquid_grid):
        rng = np.random.default_rng(0)
        temps = rng.uniform(40.0, 90.0, liquid_grid.n_nodes)
        assert liquid_grid.max_die_temperature(
            temps
        ) >= liquid_grid.max_unit_temperature(temps)

    def test_die_temperature_field_shape(self, liquid_grid):
        temps = np.arange(liquid_grid.n_nodes, dtype=float)
        field = liquid_grid.die_temperature_field(temps, 0)
        assert field.shape == (12, 12)
