"""The analytic unit-cell model (Eqs. 1-7) and its grid-model agreement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.constants import MICROCHANNEL
from repro.errors import ModelError
from repro.microchannel.model import MicrochannelModel
from repro.thermal.analytic import AnalyticUnitCell

FLOW = units.litres_per_minute(0.5)


@pytest.fixture
def cell():
    return AnalyticUnitCell(model=MicrochannelModel())


class TestComponents:
    def test_dt_cond_eq2(self, cell):
        # dTcond = R_BEOL * q1; 30 W/cm^2 -> 5.333 K*mm^2/W * 0.3 W/mm^2.
        q = units.w_per_cm2(30.0)
        assert cell.dt_cond(q) == pytest.approx(MICROCHANNEL.r_beol * q)
        assert cell.dt_cond(q) == pytest.approx(1.6, rel=1e-3)

    def test_dt_cond_flow_independent(self, cell):
        """The paper: dTcond is independent of the flow rate."""
        assert cell.dt_cond(1.0e5) == cell.dt_cond(1.0e5)

    def test_dt_conv_uses_both_fluxes(self, cell):
        q = units.w_per_cm2(20.0)
        one = cell.dt_conv(q, 0.0, FLOW)
        both = cell.dt_conv(q, q, FLOW)
        assert both == pytest.approx(2 * one)

    def test_dt_conv_falls_with_flow(self, cell):
        q = units.w_per_cm2(20.0)
        assert cell.dt_conv(q, q, MICROCHANNEL.flow_rate_min) > cell.dt_conv(
            q, q, MICROCHANNEL.flow_rate_max
        )

    def test_dt_heat_uniform_eq45(self, cell):
        q = units.w_per_cm2(20.0)
        area = 1.0e-4
        r_heat = cell.model.r_heat(area, FLOW)
        assert cell.dt_heat_uniform(q, q, area, FLOW) == pytest.approx(2 * q * r_heat)

    def test_junction_rise_is_sum(self, cell):
        q = units.w_per_cm2(20.0)
        result = cell.junction_rise(q, q, 1.0e-4, FLOW)
        assert result.dt_junction == pytest.approx(
            result.dt_cond + result.dt_heat + result.dt_conv
        )

    def test_negative_flux_rejected(self, cell):
        with pytest.raises(ModelError):
            cell.dt_cond(-1.0)
        with pytest.raises(ModelError):
            cell.dt_conv(-1.0, 0.0, FLOW)


class TestHeatProfile:
    def test_uniform_profile_matches_eq4(self, cell):
        """The iterative computation at uniform flux ends at the value
        Eq. 4/5 gives for the whole heater."""
        n = 50
        area_total = 1.0e-4
        q = units.w_per_cm2(20.0)
        fluxes = np.full(n, 2 * q)  # q1 + q2.
        profile = cell.heat_profile(fluxes, area_total / n, FLOW)
        assert profile[-1] == pytest.approx(
            cell.dt_heat_uniform(q, q, area_total, FLOW), rel=1e-9
        )

    def test_profile_monotone_nondecreasing(self, cell):
        rng = np.random.default_rng(1)
        fluxes = rng.uniform(0.0, 2.0e5, 40)
        profile = cell.heat_profile(fluxes, 1.0e-6, FLOW)
        assert np.all(np.diff(profile) >= -1e-12)

    def test_profile_is_cumulative_sum(self, cell):
        """dTheat(n+1) = sum_{i<=n} dTheat(i) — the paper's recurrence."""
        fluxes = np.array([1.0e5, 2.0e5, 0.5e5])
        seg = 1.0e-6
        profile = cell.heat_profile(fluxes, seg, FLOW)
        rate = cell.model.cavity_heat_capacity_rate(FLOW)
        per_pos = fluxes * seg / rate
        assert np.allclose(profile, np.cumsum(per_pos))

    def test_zero_flow_rejected(self, cell):
        with pytest.raises(ModelError):
            cell.heat_profile(np.ones(3), 1.0e-6, 0.0)

    def test_negative_flux_rejected(self, cell):
        with pytest.raises(ModelError):
            cell.heat_profile(np.array([-1.0]), 1.0e-6, FLOW)

    @given(st.floats(min_value=1e-6, max_value=1.6e-5))
    def test_profile_scales_inversely_with_flow(self, flow):
        cell = AnalyticUnitCell(model=MicrochannelModel())
        fluxes = np.full(10, 1.0e5)
        p1 = cell.heat_profile(fluxes, 1.0e-6, flow)
        p2 = cell.heat_profile(fluxes, 1.0e-6, 2 * flow)
        assert np.allclose(p1, 2 * p2, rtol=1e-9)


class TestGridAgreement:
    def test_grid_tracks_analytic_sensible_heat(self):
        """The grid model's coolant outlet rise equals the analytic
        m_dot*c_p energy balance for the heat actually absorbed."""
        from repro.geometry.stack import build_stack
        from repro.thermal.grid import ThermalGrid
        from repro.thermal.rc_network import ThermalParams, build_network
        from repro.thermal.solver import SteadyStateSolver

        grid = ThermalGrid(build_stack(2), nx=10, ny=10)
        net = build_network(grid, ThermalParams(), cavity_flows=[FLOW])
        total_power = 24.0
        p = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        temps = SteadyStateSolver(net).solve(p)

        coolant = MicrochannelModel().coolant
        capacity_rate_total = coolant.mass_flow(FLOW) * coolant.heat_capacity * 3
        expected_mean_rise = total_power / capacity_rate_total

        outlet_nodes = np.concatenate(
            [grid.slab_nodes(s)[:, -1] for s in grid.cavity_slab_indices()]
        )
        mean_outlet_rise = float(temps[outlet_nodes].mean()) - 60.0
        assert mean_outlet_rise == pytest.approx(expected_mean_rise, rel=0.05)
