"""Air package parameter validation."""

import pytest

from repro.constants import STACK
from repro.errors import ConfigurationError
from repro.thermal.package import AirPackage


class TestAirPackage:
    def test_defaults_from_table3(self):
        pkg = AirPackage()
        assert pkg.sink_resistance == STACK.convection_resistance
        assert pkg.sink_capacitance == STACK.convection_capacitance

    def test_hotspot_default_ambient(self):
        assert AirPackage().ambient == 45.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tim_resistance_area": 0.0},
            {"spreader_resistance": -1.0},
            {"sink_resistance": 0.0},
            {"spreader_capacitance": 0.0},
            {"sink_capacitance": -5.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            AirPackage(**kwargs)
