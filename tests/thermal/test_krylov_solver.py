"""Krylov solver tier: neighbor preconditioning, fallbacks, failures."""

import threading
from dataclasses import replace

import numpy as np
import pytest
import scipy.sparse as sp

from repro import units
from repro.errors import SolverError
from repro.geometry.stack import build_stack
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import (
    KRYLOV_TEMPERATURE_TOLERANCE,
    KrylovSteadySolver,
    KrylovTransientSolver,
    NeighborFactorCache,
    SteadyStateSolver,
    TransientSolver,
    factorization_count,
    krylov_stats,
    params_distance,
    structure_signature,
    _params_vector,
)

FLOW = units.ml_per_minute(400.0)


@pytest.fixture(scope="module")
def grid():
    return ThermalGrid(build_stack(2), nx=8, ny=8)


def _network(grid, **param_overrides):
    return build_network(
        grid, ThermalParams(**param_overrides), cavity_flows=[FLOW]
    )


@pytest.fixture(scope="module")
def net(grid):
    return _network(grid)


@pytest.fixture(scope="module")
def power(net):
    return net.grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})


def _singular(net, zero_capacitance=False):
    """A structurally intact but numerically singular network."""
    singular = sp.csr_matrix(net.conductance.shape)
    capacitance = (
        np.zeros_like(net.capacitance) if zero_capacitance else net.capacitance
    )
    return replace(net, conductance=singular, capacitance=capacitance)


class TestNeighborFactorCache:
    def test_capacity_validated(self):
        with pytest.raises(SolverError):
            NeighborFactorCache(capacity=0)

    def test_exact_hit_and_miss(self, net):
        cache = NeighborFactorCache()
        structure = structure_signature(net)
        params = ThermalParams()
        assert cache.exact(structure, params) is None
        solver = TransientSolver(net, dt=0.1)
        cache.retain(structure, params, solver._lu)
        assert cache.exact(structure, params) is solver._lu
        assert cache.exact(structure, ThermalParams(resistance_scale=2.0)) is None

    def test_nearest_picks_closest(self, net):
        cache = NeighborFactorCache()
        structure = structure_signature(net)
        lu_far = TransientSolver(net, dt=0.1)._lu
        lu_near = TransientSolver(net, dt=0.1)._lu
        cache.retain(structure, ThermalParams(resistance_scale=9.0), lu_far)
        cache.retain(structure, ThermalParams(resistance_scale=5.0), lu_near)
        hit = cache.nearest(structure, _params_vector(ThermalParams()))
        assert hit is not None
        lu, dist = hit
        assert lu is lu_near
        assert dist == pytest.approx(
            params_distance(
                _params_vector(ThermalParams(resistance_scale=5.0)),
                _params_vector(ThermalParams()),
            )
        )

    def test_nearest_respects_structure(self, net):
        cache = NeighborFactorCache()
        cache.retain(("other",), ThermalParams(), TransientSolver(net, dt=0.1)._lu)
        assert cache.nearest(structure_signature(net), _params_vector(ThermalParams())) is None

    def test_lru_eviction(self, net):
        cache = NeighborFactorCache(capacity=2)
        structure = structure_signature(net)
        lu = TransientSolver(net, dt=0.1)._lu
        oldest = ThermalParams(resistance_scale=1.0)
        cache.retain(structure, oldest, lu)
        cache.retain(structure, ThermalParams(resistance_scale=2.0), lu)
        # Touch the oldest so the middle entry becomes LRU.
        assert cache.exact(structure, oldest) is lu
        cache.retain(structure, ThermalParams(resistance_scale=3.0), lu)
        assert len(cache) == 2
        assert cache.exact(structure, oldest) is lu
        assert cache.exact(structure, ThermalParams(resistance_scale=2.0)) is None

    def test_distance_is_scale_free(self):
        a = _params_vector(ThermalParams())
        assert params_distance(a, a) == 0.0
        b = _params_vector(ThermalParams(resistance_scale=2.0))
        c = _params_vector(ThermalParams(inlet_temperature=120.0))
        assert params_distance(a, b) > 0.0
        assert params_distance(a, c) > 0.0


class TestKrylovTransient:
    def test_first_point_factorizes_and_matches_exact(self, net, power):
        cache = NeighborFactorCache()
        before = factorization_count()
        krylov = KrylovTransientSolver(net, 0.1, ThermalParams(), cache=cache)
        assert factorization_count() - before == 1
        assert len(cache) == 1
        exact = TransientSolver(net, 0.1)
        state = np.full(net.n_nodes, 60.0)
        # With its own LU the krylov solver solves directly: bitwise.
        np.testing.assert_array_equal(
            krylov.step(state, power), exact.step(state, power)
        )

    def test_neighbor_preconditioning_avoids_factorization(self, grid, power):
        cache = NeighborFactorCache()
        seed_params = ThermalParams(resistance_scale=4.2)
        KrylovTransientSolver(_network(grid, resistance_scale=4.2), 0.1,
                              seed_params, cache=cache)
        target = _network(grid)
        before = factorization_count()
        stats_before = krylov_stats()
        krylov = KrylovTransientSolver(target, 0.1, ThermalParams(), cache=cache)
        assert factorization_count() - before == 0
        assert krylov.neighbor_distance is not None
        stats = krylov_stats()
        assert stats["preconditioner_hits"] == stats_before["preconditioner_hits"] + 1
        exact = TransientSolver(target, 0.1)
        state = np.full(target.n_nodes, 60.0)
        out_k, out_e = krylov.step(state, power), exact.step(state, power)
        assert krylov.fallback_count == 0
        assert np.abs(out_k - out_e).max() < KRYLOV_TEMPERATURE_TOLERANCE

    def test_exact_design_point_reuses_lu_bitwise(self, net, power):
        cache = NeighborFactorCache()
        first = KrylovTransientSolver(net, 0.1, ThermalParams(), cache=cache)
        before = factorization_count()
        again = KrylovTransientSolver(net, 0.1, ThermalParams(), cache=cache)
        assert factorization_count() - before == 0
        state = np.full(net.n_nodes, 60.0)
        np.testing.assert_array_equal(
            again.step(state, power), first.step(state, power)
        )

    def test_step_many_matches_per_column(self, grid, power):
        cache = NeighborFactorCache()
        KrylovTransientSolver(_network(grid, resistance_scale=4.2), 0.1,
                              ThermalParams(resistance_scale=4.2), cache=cache)
        target = _network(grid)
        krylov = KrylovTransientSolver(target, 0.1, ThermalParams(), cache=cache)
        temps = np.stack(
            [np.full(target.n_nodes, 60.0), np.full(target.n_nodes, 65.0)], axis=1
        )
        powers = np.stack([power, 0.5 * power], axis=1)
        block = krylov.step_many(temps, powers)
        for c in range(2):
            single = krylov.step(temps[:, c], powers[:, c])
            assert np.abs(block[:, c] - single).max() < KRYLOV_TEMPERATURE_TOLERANCE

    def test_fallback_records_and_matches_exact(self, grid, power):
        # A distant neighbor plus a one-iteration budget cannot reach
        # the residual floor: the solver must fall back to its own
        # exact factorization, record it, and answer bitwise-exactly.
        cache = NeighborFactorCache()
        KrylovTransientSolver(_network(grid, resistance_scale=12.0), 0.1,
                              ThermalParams(resistance_scale=12.0), cache=cache)
        target = _network(grid)
        krylov = KrylovTransientSolver(
            target, 0.1, ThermalParams(), cache=cache, max_iterations=1
        )
        assert krylov.fallback_count == 0
        before = factorization_count()
        stats_before = krylov_stats()
        state = np.full(target.n_nodes, 60.0)
        out = krylov.step(state, power)
        assert krylov.fallback_count == 1
        assert factorization_count() - before == 1
        assert krylov_stats()["fallbacks"] == stats_before["fallbacks"] + 1
        np.testing.assert_array_equal(
            out, TransientSolver(target, 0.1).step(state, power)
        )
        # The fallback LU is retained: subsequent steps are direct and
        # do not fall back again.
        krylov.step(state, power)
        assert krylov.fallback_count == 1

    def test_run_converges_to_steady_state(self, grid, power):
        cache = NeighborFactorCache()
        KrylovTransientSolver(_network(grid, resistance_scale=4.2), 0.1,
                              ThermalParams(resistance_scale=4.2), cache=cache)
        target = _network(grid)
        krylov = KrylovTransientSolver(target, 0.1, ThermalParams(), cache=cache)
        steady = SteadyStateSolver(target).solve(power)
        final = krylov.run(np.full(target.n_nodes, 60.0), power, 100)
        assert np.allclose(final, steady, atol=0.05)

    def test_validations(self, net):
        cache = NeighborFactorCache()
        with pytest.raises(SolverError):
            KrylovTransientSolver(net, 0.0, ThermalParams(), cache=cache)
        with pytest.raises(SolverError):
            KrylovTransientSolver(net, 0.1, ThermalParams(), cache=cache,
                                  tolerance=0.0)
        with pytest.raises(SolverError):
            KrylovTransientSolver(net, 0.1, ThermalParams(), cache=cache,
                                  max_iterations=0)
        solver = KrylovTransientSolver(net, 0.1, ThermalParams(), cache=cache)
        with pytest.raises(SolverError):
            solver.step(np.zeros(3), np.zeros(3))
        with pytest.raises(SolverError):
            solver.step_many(np.zeros((3, 2)), np.zeros((3, 2)))


class TestKrylovSteady:
    def test_matches_exact_solver(self, grid, power):
        cache = NeighborFactorCache()
        seed_net = _network(grid, resistance_scale=4.2)
        KrylovSteadySolver(seed_net, ThermalParams(resistance_scale=4.2),
                           cache=cache)
        target = _network(grid)
        before = factorization_count()
        krylov = KrylovSteadySolver(target, ThermalParams(), cache=cache)
        assert factorization_count() - before == 0
        exact = SteadyStateSolver(target)
        diff = np.abs(krylov.solve(power) - exact.solve(power)).max()
        assert diff < KRYLOV_TEMPERATURE_TOLERANCE
        # Warm-started second solve stays within tolerance too.
        diff = np.abs(krylov.solve(0.5 * power) - exact.solve(0.5 * power)).max()
        assert diff < KRYLOV_TEMPERATURE_TOLERANCE

    def test_solve_many_matches_solve(self, grid, power):
        cache = NeighborFactorCache()
        KrylovSteadySolver(_network(grid, resistance_scale=4.2),
                           ThermalParams(resistance_scale=4.2), cache=cache)
        target = _network(grid)
        krylov = KrylovSteadySolver(target, ThermalParams(), cache=cache)
        exact = SteadyStateSolver(target)
        powers = np.stack([power, 0.25 * power], axis=1)
        block = krylov.solve_many(powers)
        expected = exact.solve_many(powers)
        assert np.abs(block - expected).max() < KRYLOV_TEMPERATURE_TOLERANCE

    def test_shape_check(self, net):
        krylov = KrylovSteadySolver(net, ThermalParams(),
                                    cache=NeighborFactorCache())
        with pytest.raises(SolverError):
            krylov.solve(np.zeros(3))
        with pytest.raises(SolverError):
            krylov.solve_many(np.zeros((3, 2)))


class TestSingularNetworks:
    """Failure paths: a singular system must raise SolverError, never
    return garbage, in every solver tier."""

    def test_steady_exact_raises(self, net):
        with pytest.raises(SolverError):
            SteadyStateSolver(_singular(net))

    def test_transient_exact_raises(self, net):
        with pytest.raises(SolverError):
            TransientSolver(_singular(net, zero_capacitance=True), dt=0.1)

    def test_steady_krylov_raises(self, net):
        with pytest.raises(SolverError):
            KrylovSteadySolver(_singular(net), ThermalParams(),
                               cache=NeighborFactorCache())

    def test_transient_krylov_raises(self, net):
        with pytest.raises(SolverError):
            KrylovTransientSolver(
                _singular(net, zero_capacitance=True), 0.1, ThermalParams(),
                cache=NeighborFactorCache(),
            )

    def test_negative_capacitance_raises(self, net):
        bad = replace(net, capacitance=-np.ones_like(net.capacitance))
        with pytest.raises(SolverError):
            KrylovTransientSolver(bad, 0.1, ThermalParams(),
                                  cache=NeighborFactorCache())


class TestCounterThreadSafety:
    def test_concurrent_factorizations_all_counted(self, grid):
        # Each thread factorizes its own fresh network; the counter
        # must account for every one (the increment is lock-guarded).
        n_threads = 8
        nets = [_network(grid, resistance_scale=1.0 + 0.01 * i)
                for i in range(n_threads)]
        before = factorization_count()
        barrier = threading.Barrier(n_threads)

        def build(net):
            barrier.wait()
            TransientSolver(net, dt=0.1)

        threads = [threading.Thread(target=build, args=(n,)) for n in nets]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert factorization_count() - before == n_threads
