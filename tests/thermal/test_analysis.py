"""Step-response analysis: the paper's time-constant claim."""

import numpy as np
import pytest

from repro import units
from repro.errors import SolverError
from repro.geometry.stack import CoolingKind, build_stack
from repro.thermal.analysis import StepResponse, step_response
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network


@pytest.fixture(scope="module")
def liquid_network():
    grid = ThermalGrid(build_stack(2), nx=8, ny=8)
    return build_network(
        grid, ThermalParams(), cavity_flows=[units.ml_per_minute(400.0)]
    )


@pytest.fixture(scope="module")
def response(liquid_network):
    grid = liquid_network.grid
    power = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
    return step_response(liquid_network, power, dt=0.005, max_time=2.0)


class TestStepResponse:
    def test_monotone_rise(self, response):
        assert np.all(np.diff(response.tmax) >= -1e-9)

    def test_approaches_final_value(self, response):
        assert response.tmax[-1] == pytest.approx(response.t_final, abs=0.05)

    def test_paper_time_constant_claim(self, response):
        """'the thermal time constant on a 3D system like ours is
        typically less than 100 ms' — and well below the 250-300 ms
        pump transition, which is the whole argument for forecasting."""
        tau = response.time_constant()
        assert tau < 0.1
        assert tau < 0.25  # Strictly below the pump transition.

    def test_settling_time_exceeds_time_constant(self, response):
        assert response.settling_time(0.05) > response.time_constant()

    def test_settling_fraction_bounds(self, response):
        fraction = response.settling_fraction()
        assert fraction[0] >= 0.0
        assert fraction[-1] == pytest.approx(1.0, abs=0.05)


class TestAirResponseSlower:
    def test_air_package_has_much_larger_settling(self):
        """The air path has two poles: a fast die/TIM rise and a slow
        sink tail (140 J/K behind 0.1 K/W, tau ~ 14 s). The 63 % point
        stays fast, but full settling takes many seconds — this slow
        tail is why air-cooled DTM papers can be reactive while the
        liquid stack (which settles completely in under a second,
        see TestStepResponse) cannot."""
        grid = ThermalGrid(build_stack(2, CoolingKind.AIR), nx=8, ny=8)
        net = build_network(grid, ThermalParams())
        power = grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})
        resp = step_response(net, power, dt=0.1, max_time=120.0)
        assert resp.settling_time(0.02) > 2.0


class TestValidation:
    def test_rejects_bad_dt(self, liquid_network):
        with pytest.raises(SolverError):
            step_response(liquid_network, np.zeros(liquid_network.n_nodes), dt=0.0)

    def test_constant_input_degenerate(self):
        r = StepResponse(
            times=np.array([0.1, 0.2]),
            tmax=np.array([60.0, 60.0]),
            t_initial=60.0,
            t_final=60.0,
        )
        assert np.all(r.settling_fraction() == 1.0)
