"""Steady-state and transient solvers."""

import gc
import weakref

import numpy as np
import pytest

from repro import units
from repro.errors import SolverError
from repro.geometry.stack import build_stack
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network
from repro.thermal.solver import (
    SteadyStateSolver,
    TransientSolver,
    _steady_lu_memo,
    initial_state,
    steady_solver_for,
)

FLOW = units.ml_per_minute(400.0)


@pytest.fixture(scope="module")
def net():
    grid = ThermalGrid(build_stack(2), nx=8, ny=8)
    return build_network(grid, ThermalParams(), cavity_flows=[FLOW])


@pytest.fixture(scope="module")
def power(net):
    return net.grid.power_vector({(0, f"core{i}"): 3.0 for i in range(8)})


class TestSteadyState:
    def test_shape_check(self, net):
        with pytest.raises(SolverError):
            SteadyStateSolver(net).solve(np.zeros(3))

    def test_finite(self, net, power):
        temps = SteadyStateSolver(net).solve(power)
        assert np.all(np.isfinite(temps))

    def test_initial_state_zero_power(self, net):
        temps = initial_state(net)
        assert np.allclose(temps, 60.0, atol=1e-6)


class TestTransient:
    def test_converges_to_steady_state(self, net, power):
        steady = SteadyStateSolver(net).solve(power)
        solver = TransientSolver(net, dt=0.1)
        temps = np.full(net.n_nodes, 60.0)
        temps = solver.run(temps, power, 100)
        assert np.allclose(temps, steady, atol=0.05)

    def test_steady_state_is_fixed_point(self, net, power):
        steady = SteadyStateSolver(net).solve(power)
        solver = TransientSolver(net, dt=0.1)
        after = solver.step(steady, power)
        assert np.allclose(after, steady, atol=1e-8)

    def test_monotone_heating_from_cold(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        temps = np.full(net.n_nodes, 60.0)
        tmax_series = []
        for _ in range(20):
            temps = solver.step(temps, power)
            tmax_series.append(net.grid.max_die_temperature(temps))
        diffs = np.diff(tmax_series)
        assert np.all(diffs >= -1e-9)

    def test_stable_with_large_dt(self, net, power):
        """Backward Euler is unconditionally stable: even a huge step
        must land near the steady state, not blow up."""
        solver = TransientSolver(net, dt=100.0)
        temps = solver.step(np.full(net.n_nodes, 60.0), power)
        steady = SteadyStateSolver(net).solve(power)
        assert np.all(np.isfinite(temps))
        assert np.abs(temps - steady).max() < 1.0

    def test_cooling_after_power_off(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        hot = SteadyStateSolver(net).solve(power)
        cooled = solver.run(hot, np.zeros(net.n_nodes), 200)
        assert np.allclose(cooled, 60.0, atol=0.05)

    def test_rejects_bad_dt(self, net):
        with pytest.raises(SolverError):
            TransientSolver(net, dt=0.0)

    def test_rejects_shape_mismatch(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        with pytest.raises(SolverError):
            solver.step(np.zeros(3), power)

    def test_rejects_negative_steps(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        with pytest.raises(SolverError):
            solver.run(np.full(net.n_nodes, 60.0), power, -1)

    def test_thermal_time_constant_under_1s(self, net, power):
        """The paper quotes a stack thermal time constant below 100 ms;
        our liquid stack must equilibrate within about a second."""
        solver = TransientSolver(net, dt=0.1)
        steady = SteadyStateSolver(net).solve(power)
        temps = np.full(net.n_nodes, 60.0)
        temps = solver.run(temps, power, 10)  # 1 s.
        gap = np.abs(temps - steady).max()
        initial_gap = np.abs(60.0 - steady).max()
        assert gap < 0.05 * initial_gap


class TestSteadySolverMemo:
    """The LU memo keys weakly on the network: reuse while alive,
    release when dropped (the old id()-keyed LRU pinned up to 8
    networks and their factorizations forever)."""

    def _fresh_network(self):
        grid = ThermalGrid(build_stack(2), nx=8, ny=8)
        return build_network(grid, ThermalParams(), cavity_flows=[FLOW])

    def test_reuses_factorization_while_network_alive(self):
        net = self._fresh_network()
        s1 = steady_solver_for(net)
        s2 = steady_solver_for(net)
        assert s1._lu is s2._lu

    def test_distinct_networks_get_distinct_factorizations(self):
        net_a = self._fresh_network()
        net_b = self._fresh_network()
        assert steady_solver_for(net_a)._lu is not steady_solver_for(net_b)._lu

    def test_dropped_network_is_released(self):
        net = self._fresh_network()
        ref = weakref.ref(net)
        before = len(_steady_lu_memo)
        steady_solver_for(net)
        assert len(_steady_lu_memo) == before + 1
        del net
        gc.collect()
        assert ref() is None, "memo must not pin the network alive"
        assert len(_steady_lu_memo) == before

    def test_initial_state_uses_memo(self):
        net = self._fresh_network()
        t1 = initial_state(net)
        t2 = initial_state(net)  # second call reuses the cached LU
        np.testing.assert_array_equal(t1, t2)
        assert np.allclose(t1, 60.0, atol=1e-6)


class TestStepMany:
    def test_columns_match_single_steps(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        t0 = initial_state(net, power)
        temps = np.stack([t0, t0 + 1.0, t0 - 2.0], axis=1)
        powers = np.stack([power, 0.5 * power, 2.0 * power], axis=1)
        block = solver.step_many(temps, powers)
        assert block.shape == temps.shape
        for j in range(3):
            single = solver.step(temps[:, j], powers[:, j])
            # SuperLU's blocked multi-RHS kernels round differently
            # than the single-vector path: equivalent to LU roundoff,
            # documented as such (the cohort runner's bitwise default
            # therefore steps per column).
            np.testing.assert_allclose(block[:, j], single, rtol=0, atol=1e-9)

    def test_single_column_block_is_exact(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        t0 = initial_state(net, power)
        block = solver.step_many(t0[:, None], power[:, None])
        np.testing.assert_array_equal(block[:, 0], solver.step(t0, power))

    def test_shape_mismatch_raises(self, net, power):
        solver = TransientSolver(net, dt=0.1)
        t0 = initial_state(net, power)
        with pytest.raises(SolverError):
            solver.step_many(t0, power)  # 1-D inputs
        with pytest.raises(SolverError):
            solver.step_many(t0[:, None], np.stack([power, power], axis=1))


class TestFactorizationCounter:
    def test_counts_each_factorization_once(self, net):
        from repro.thermal.solver import factorization_count

        before = factorization_count()
        solver = TransientSolver(net, dt=0.05)
        assert factorization_count() == before + 1
        # Stepping never factorizes.
        state = np.full(net.n_nodes, 40.0)
        solver.step(state, np.zeros(net.n_nodes))
        assert factorization_count() == before + 1
        # Reusing an existing LU is free; factorizing anew is counted.
        lu = SteadyStateSolver(net)._lu
        after_steady = factorization_count()
        assert after_steady == before + 2
        SteadyStateSolver(net, lu=lu)
        assert factorization_count() == after_steady
