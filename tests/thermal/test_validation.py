"""Grid-vs-analytic cross-validation."""

import pytest

from repro.thermal.validation import (
    max_relative_error,
    sensible_heat_validation,
)


@pytest.fixture(scope="module")
def rows():
    return sensible_heat_validation()


class TestSensibleHeatAgreement:
    def test_grid_matches_analytic_energy_balance(self, rows):
        """The grid network's coolant outlet rise equals Eq. 4/5's
        prediction — energy conservation is exact in both models."""
        assert max_relative_error(rows) < 1.0e-6

    def test_rise_falls_with_flow(self, rows):
        rises = [r.grid_outlet_rise for r in rows]
        assert rises == sorted(rises, reverse=True)

    def test_rise_inversely_proportional_to_flow(self, rows):
        """Eq. 5: R_heat ~ 1/Vdot, so rise * flow is constant."""
        products = [r.grid_outlet_rise * r.flow_per_cavity for r in rows]
        for p in products[1:]:
            assert p == pytest.approx(products[0], rel=1e-3)

    def test_empty_sweep(self):
        assert max_relative_error([]) == 0.0
