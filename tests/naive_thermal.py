"""Naive (pre-vectorization) reference implementations of the thermal
hot path.

These are line-for-line retained copies of the per-unit / per-cell
Python-loop implementations the vectorized substrate replaced (PR 3):
unit<->cell scatter/gather in ``ThermalGrid`` and the cell-by-cell
network assembly in ``rc_network``. The equivalence suite pins the
vectorized path to these references *exactly* (bitwise for the
operators and the assembled matrices), so any semantic drift in a
future optimization shows up as a hard failure, not a tolerance creep.

The assembly references drive the real :class:`_Assembler` through its
scalar entry points; both paths share the canonical duplicate-summing
:meth:`_Assembler.to_csr`, which makes the comparison emission-order
independent.
"""

from __future__ import annotations

import numpy as np

from repro.constants import STACK
from repro.geometry.floorplan import UnitKind
from repro.microchannel.model import MicrochannelModel
from repro.thermal.grid import SlabKind, ThermalGrid
from repro.thermal.package import AirPackage
from repro.thermal.rc_network import (
    RCNetwork,
    ThermalParams,
    _Assembler,
    _beol_resistance,
    _die_half_resistance,
    _series,
    _tsv_fill_fraction,
    _tsv_mask,
)

# --- grid operators ----------------------------------------------------------


def naive_unit_cells(grid: ThermalGrid, die_index: int, unit_name: str) -> np.ndarray:
    """Original raster-scan unit->cells lookup."""
    floorplan = grid.stack.dies[die_index].floorplan
    unit_idx = floorplan.units.index(floorplan.unit(unit_name))
    mask = grid.rasters[die_index] == unit_idx
    return grid.slab_nodes(grid.die_slab_index(die_index))[mask]


def naive_power_vector(grid: ThermalGrid, unit_powers) -> np.ndarray:
    """Original per-unit scatter loop (one division per unit)."""
    p = np.zeros(grid.n_nodes)
    for (die_index, unit_name), watts in unit_powers.items():
        cells = naive_unit_cells(grid, die_index, unit_name)
        p[cells] += watts / cells.size
    return p


def naive_unit_temperature(grid: ThermalGrid, temperatures, die_index, unit_name) -> float:
    """Per-unit mean via a sequential scalar sum over the unit's cells
    (the summation order of a sparse gather-row matvec)."""
    cells = naive_unit_cells(grid, die_index, unit_name)
    total = 0.0
    for c in cells:
        total += float(temperatures[c])
    return total / cells.size


def naive_unit_temperatures(grid: ThermalGrid, temperatures) -> dict:
    out = {}
    for d, die in enumerate(grid.stack.dies):
        for unit in die.floorplan:
            out[(d, unit.name)] = naive_unit_temperature(grid, temperatures, d, unit.name)
    return out


def naive_core_temperatures(grid: ThermalGrid, temperatures) -> dict:
    out = {}
    for d, die in enumerate(grid.stack.dies):
        for unit in die.floorplan.units_of_kind(UnitKind.CORE):
            out[unit.name] = naive_unit_temperature(grid, temperatures, d, unit.name)
    return out


def naive_max_die_temperature(grid: ThermalGrid, temperatures) -> float:
    return max(
        float(temperatures[grid.slab_nodes(s)].max()) for s in grid.die_slab_indices()
    )


def naive_max_unit_temperature(grid: ThermalGrid, temperatures) -> float:
    return max(naive_unit_temperatures(grid, temperatures).values())


def naive_die_slab_index(grid: ThermalGrid, die_index: int) -> int:
    """Original O(n_slabs) linear scan."""
    for s, slab in enumerate(grid.slabs):
        if slab.kind is SlabKind.DIE and slab.die_index == die_index:
            return s
    raise LookupError(die_index)


def naive_cavity_slab_index(grid: ThermalGrid, cavity_index: int) -> int:
    for s, slab in enumerate(grid.slabs):
        if slab.kind is SlabKind.CAVITY and slab.cavity_index == cavity_index:
            return s
    raise LookupError(cavity_index)


# --- network assembly --------------------------------------------------------


def _naive_die_lateral(asm, grid, slab_idx, thickness, k):
    g_x = k * thickness * grid.cell_h / grid.cell_w
    g_y = k * thickness * grid.cell_w / grid.cell_h
    for j in range(grid.ny):
        for i in range(grid.nx):
            node = grid.node(slab_idx, i, j)
            if i + 1 < grid.nx:
                asm.add_coupling(node, grid.node(slab_idx, i + 1, j), g_x)
            if j + 1 < grid.ny:
                asm.add_coupling(node, grid.node(slab_idx, i, j + 1), g_y)


def naive_build_liquid(
    grid: ThermalGrid,
    params: ThermalParams,
    flows: tuple,
    model: MicrochannelModel,
) -> RCNetwork:
    """The original cell-by-cell liquid assembly (scalar couplings)."""
    asm = _Assembler(grid.n_nodes)
    capacitance = np.zeros(grid.n_nodes)
    stack = grid.stack
    scale = params.resistance_scale
    coolant = model.coolant
    geom = model.geometry
    p_eff = geom.effective_pitch(model.die_height)
    fluid_fraction = min(1.0, geom.width / p_eff)
    t_cavity = STACK.interlayer_thickness_with_channels

    for die_index, die in enumerate(stack.dies):
        slab_idx = grid.die_slab_index(die_index)
        _naive_die_lateral(asm, grid, slab_idx, die.thickness, params.k_silicon)
        cap = params.silicon_vol_capacity * grid.cell_area * die.thickness
        capacitance[grid.slab_nodes(slab_idx)] += cap

    for cavity_index in range(stack.n_cavities):
        flow = flows[cavity_index]
        slab_idx = grid.cavity_slab_index(cavity_index)
        die_below = cavity_index - 1 if cavity_index > 0 else None
        die_above = cavity_index if cavity_index < stack.n_dies else None

        h_eff = model.effective_h(flow)
        g_film_side = h_eff * grid.cell_area / 2.0 / scale
        g_adv_row = coolant.mass_flow(flow / grid.ny) * coolant.heat_capacity

        fluid_volume = grid.cell_area * geom.height * fluid_fraction
        solid_volume = grid.cell_area * t_cavity - fluid_volume
        cap = (
            coolant.volumetric_heat_capacity() * fluid_volume
            + params.interlayer_vol_capacity * max(solid_volume, 0.0)
        )
        capacitance[grid.slab_nodes(slab_idx)] += cap

        r_up = {}
        r_down = {}
        if die_below is not None:
            t_d = stack.dies[die_below].thickness
            r_up[die_below] = _die_half_resistance(grid, t_d, params) + _beol_resistance(
                grid, params, scale
            )
        if die_above is not None:
            t_d = stack.dies[die_above].thickness
            r_down[die_above] = _die_half_resistance(grid, t_d, params)

        tsv_mask = None
        tsv_g = 0.0
        wall_g = 0.0
        if die_below is not None and die_above is not None:
            tsv_mask = _tsv_mask(grid, die_below)
            phi = _tsv_fill_fraction(grid, die_below)
            k_wall = (1.0 - fluid_fraction) * params.interlayer_conductivity
            k_tsv = phi * params.tsv_conductivity + k_wall
            tsv_g = k_tsv * grid.cell_area / t_cavity
            wall_g = k_wall * grid.cell_area / t_cavity

        for j in range(grid.ny):
            for i in range(grid.nx):
                fluid = grid.node(slab_idx, i, j)
                upstream = grid.node(slab_idx, i - 1, j) if i > 0 else None
                asm.add_advection(fluid, upstream, g_adv_row, params.inlet_temperature)

                if die_below is not None:
                    below = grid.node(grid.die_slab_index(die_below), i, j)
                    g = _series(r_up[die_below], 1.0 / g_film_side)
                    asm.add_coupling(fluid, below, g)
                if die_above is not None:
                    above = grid.node(grid.die_slab_index(die_above), i, j)
                    g = _series(r_down[die_above], 1.0 / g_film_side)
                    asm.add_coupling(fluid, above, g)
                if die_below is not None and die_above is not None:
                    below = grid.node(grid.die_slab_index(die_below), i, j)
                    above = grid.node(grid.die_slab_index(die_above), i, j)
                    g_solid = tsv_g if tsv_mask is not None and tsv_mask[j, i] else wall_g
                    if g_solid > 0.0:
                        r_total = (
                            _die_half_resistance(grid, stack.dies[die_below].thickness, params)
                            + _beol_resistance(grid, params, scale)
                            + 1.0 / g_solid
                            + _die_half_resistance(grid, stack.dies[die_above].thickness, params)
                        )
                        asm.add_coupling(below, above, 1.0 / r_total)

    return RCNetwork(
        conductance=asm.to_csr(),
        capacitance=capacitance,
        boundary=asm.boundary,
        grid=grid,
        cavity_flows=flows,
    )


def naive_build_air(grid: ThermalGrid, params: ThermalParams, package: AirPackage) -> RCNetwork:
    """The original cell-by-cell air assembly (scalar couplings)."""
    asm = _Assembler(grid.n_nodes)
    capacitance = np.zeros(grid.n_nodes)
    stack = grid.stack
    scale = params.air_resistance_scale

    for die_index, die in enumerate(stack.dies):
        slab_idx = grid.die_slab_index(die_index)
        _naive_die_lateral(asm, grid, slab_idx, die.thickness, params.k_silicon)
        cap = params.silicon_vol_capacity * grid.cell_area * die.thickness
        capacitance[grid.slab_nodes(slab_idx)] += cap

    for slab_idx, slab in enumerate(grid.slabs):
        if slab.kind is not SlabKind.INTERFACE:
            continue
        die_below = slab.cavity_index
        die_above = die_below + 1
        t_if = slab.thickness
        cap = params.interlayer_vol_capacity * grid.cell_area * t_if
        capacitance[grid.slab_nodes(slab_idx)] += cap
        tsv_mask = _tsv_mask(grid, die_below)
        phi = _tsv_fill_fraction(grid, die_below)
        k_plain = params.interlayer_conductivity
        k_tsv = phi * params.tsv_conductivity + (1.0 - phi) * k_plain
        r_below_half = (
            _die_half_resistance(grid, stack.dies[die_below].thickness, params)
            + _beol_resistance(grid, params, scale)
        )
        r_above_half = _die_half_resistance(grid, stack.dies[die_above].thickness, params)
        for j in range(grid.ny):
            for i in range(grid.nx):
                node_if = grid.node(slab_idx, i, j)
                below = grid.node(grid.die_slab_index(die_below), i, j)
                above = grid.node(grid.die_slab_index(die_above), i, j)
                k_cell = k_tsv if tsv_mask[j, i] else k_plain
                r_half_if = (t_if / 2.0) / (k_cell * grid.cell_area)
                asm.add_coupling(node_if, below, _series(r_below_half, r_half_if))
                asm.add_coupling(node_if, above, _series(r_above_half, r_half_if))

    top_die = stack.n_dies - 1
    top_slab = grid.die_slab_index(top_die)
    t_top = stack.dies[top_die].thickness
    r_cell_to_spreader = (
        _die_half_resistance(grid, t_top, params)
        + _beol_resistance(grid, params, scale)
        + package.tim_resistance_area * scale / grid.cell_area
    )
    for j in range(grid.ny):
        for i in range(grid.nx):
            asm.add_coupling(
                grid.node(top_slab, i, j), grid.spreader_node, 1.0 / r_cell_to_spreader
            )
    asm.add_coupling(grid.spreader_node, grid.sink_node, 1.0 / package.spreader_resistance)
    asm.add_to_boundary(grid.sink_node, 1.0 / package.sink_resistance, package.ambient)
    capacitance[grid.spreader_node] += package.spreader_capacitance
    capacitance[grid.sink_node] += package.sink_capacitance

    return RCNetwork(
        conductance=asm.to_csr(),
        capacitance=capacitance,
        boundary=asm.boundary,
        grid=grid,
        cavity_flows=(),
    )
