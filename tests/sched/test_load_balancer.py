"""Dynamic load balancing (LB baseline)."""

import pytest

from repro.errors import SchedulingError
from repro.sched.base import CoreQueues
from repro.sched.load_balancer import LoadBalancer
from repro.workload.threads import Thread


def fill(queues, counts):
    tid = 0
    for core, n in counts.items():
        for _ in range(n):
            queues.enqueue(core, Thread(tid, arrival=0.0, length=0.1))
            tid += 1


class TestRebalance:
    def test_balances_within_threshold(self):
        queues = CoreQueues(["a", "b", "c", "d"])
        fill(queues, {"a": 9, "b": 0, "c": 0, "d": 0})
        LoadBalancer(threshold=1).rebalance(queues, {}, 0.0)
        lengths = queues.lengths()
        assert max(lengths.values()) - min(lengths.values()) <= 1

    def test_conserves_threads(self):
        queues = CoreQueues(["a", "b", "c"])
        fill(queues, {"a": 7, "b": 2, "c": 0})
        LoadBalancer().rebalance(queues, {}, 0.0)
        assert queues.total_threads() == 9

    def test_noop_when_balanced(self):
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 2, "b": 2})
        before = {c: list(q) for c, q in [(c, queues.queue(c)) for c in ["a", "b"]]}
        LoadBalancer().rebalance(queues, {}, 0.0)
        for core in ("a", "b"):
            assert list(queues.queue(core)) == before[core]

    def test_respects_running_heads(self):
        """A 1-thread queue cannot donate its running thread, so a
        {2, 0} split stays (head is pinned, only the tail moves)."""
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 2, "b": 0})
        LoadBalancer(threshold=1).rebalance(queues, {}, 0.0)
        assert queues.lengths() == {"a": 1, "b": 1}

    def test_ignores_temperatures(self):
        """LB 'does not have any thermal management features'."""
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 4, "b": 0})
        LoadBalancer().rebalance(queues, {"a": 50.0, "b": 99.0}, 0.0)
        # Threads moved toward the *hot* core regardless of temperature.
        assert queues.lengths()["b"] >= 1


class TestDispatch:
    def test_dispatch_to_shortest(self):
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 3, "b": 1})
        assert LoadBalancer().dispatch_target(queues, {}) == "b"


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(SchedulingError):
            LoadBalancer(threshold=0)
