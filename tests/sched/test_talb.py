"""TALB: weighted load balancing (Eq. 8)."""

import pytest

from repro.errors import SchedulingError
from repro.sched.base import CoreQueues
from repro.sched.talb import WeightedLoadBalancer
from repro.sched.weights import ThermalWeights
from repro.workload.threads import Thread


def fill(queues, counts):
    tid = 0
    for core, n in counts.items():
        for _ in range(n):
            queues.enqueue(core, Thread(tid, arrival=0.0, length=0.1))
            tid += 1


def constant_weights(weights):
    tw = ThermalWeights(weights)
    return lambda tmax: tw


class TestWeightedBalancing:
    def test_disadvantaged_core_gets_fewer_threads(self):
        """A core with weight 2 should end up with about half the
        threads of weight-1 cores (Eq. 8 equalizes l_i * w_i)."""
        queues = CoreQueues(["good0", "good1", "bad"])
        fill(queues, {"good0": 12, "good1": 0, "bad": 0})
        policy = WeightedLoadBalancer(
            constant_weights({"good0": 1.0, "good1": 1.0, "bad": 2.0})
        )
        policy.rebalance(queues, {"good0": 70.0, "good1": 70.0, "bad": 75.0}, 0.0)
        lengths = queues.lengths()
        assert lengths["bad"] < lengths["good0"]
        assert lengths["bad"] < lengths["good1"]

    def test_uniform_weights_behave_like_lb(self):
        queues = CoreQueues(["a", "b", "c"])
        fill(queues, {"a": 9, "b": 0, "c": 0})
        policy = WeightedLoadBalancer(
            constant_weights({"a": 1.0, "b": 1.0, "c": 1.0})
        )
        policy.rebalance(queues, {"a": 70.0, "b": 70.0, "c": 70.0}, 0.0)
        lengths = queues.lengths()
        assert max(lengths.values()) - min(lengths.values()) <= 1

    def test_conserves_threads(self):
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 8, "b": 1})
        policy = WeightedLoadBalancer(constant_weights({"a": 1.0, "b": 1.5}))
        policy.rebalance(queues, {"a": 70.0, "b": 70.0}, 0.0)
        assert queues.total_threads() == 9

    def test_terminates_on_empty_system(self):
        queues = CoreQueues(["a", "b"])
        policy = WeightedLoadBalancer(constant_weights({"a": 1.0, "b": 1.0}))
        policy.rebalance(queues, {"a": 70.0, "b": 70.0}, 0.0)
        assert queues.total_threads() == 0


class TestWeightedDispatch:
    def test_dispatch_prefers_low_weight(self):
        queues = CoreQueues(["good", "bad"])
        policy = WeightedLoadBalancer(constant_weights({"good": 1.0, "bad": 3.0}))
        target = policy.dispatch_target(queues, {"good": 70.0, "bad": 70.0})
        assert target == "good"

    def test_dispatch_balances_eventually(self):
        """Repeated weighted dispatch approximates the inverse-weight
        share: with w = {1, 2}, the good core gets ~2/3 of threads."""
        queues = CoreQueues(["good", "bad"])
        policy = WeightedLoadBalancer(constant_weights({"good": 1.0, "bad": 2.0}))
        for i in range(30):
            target = policy.dispatch_target(queues, {"good": 70.0, "bad": 70.0})
            queues.enqueue(target, Thread(i, arrival=0.0, length=0.1))
        lengths = queues.lengths()
        assert lengths["good"] == pytest.approx(20, abs=2)
        assert lengths["bad"] == pytest.approx(10, abs=2)


class TestValidation:
    def test_rejects_bad_tolerance(self):
        with pytest.raises(SchedulingError):
            WeightedLoadBalancer(constant_weights({"a": 1.0}), tolerance=0.0)
