"""The round-robin baseline policy."""

import pytest

from repro.errors import SchedulingError
from repro.sched.base import CoreQueues
from repro.sched.round_robin import RoundRobinPolicy
from repro.workload.threads import Thread


def _thread(i):
    return Thread(i, arrival=0.0, length=1.0)


class TestRoundRobin:
    def test_dispatch_cycles_over_cores(self):
        queues = CoreQueues(["c0", "c1", "c2"])
        policy = RoundRobinPolicy()
        targets = [policy.dispatch_target(queues, {}) for _ in range(7)]
        assert targets == ["c0", "c1", "c2", "c0", "c1", "c2", "c0"]

    def test_dispatch_ignores_load_and_temperature(self):
        queues = CoreQueues(["c0", "c1"])
        for i in range(5):
            queues.enqueue("c0", _thread(i))  # c0 heavily loaded...
        policy = RoundRobinPolicy()
        temps = {"c0": 95.0, "c1": 40.0}  # ...and hot.
        assert policy.dispatch_target(queues, temps) == "c0"

    def test_start_index_offsets_the_cycle(self):
        queues = CoreQueues(["c0", "c1", "c2"])
        policy = RoundRobinPolicy(start_index=2)
        assert policy.dispatch_target(queues, {}) == "c2"
        assert policy.dispatch_target(queues, {}) == "c0"

    def test_rebalance_never_moves_threads(self):
        queues = CoreQueues(["c0", "c1"])
        for i in range(4):
            queues.enqueue("c0", _thread(i))
        RoundRobinPolicy().rebalance(queues, {"c0": 90.0, "c1": 40.0}, 1.0)
        assert queues.lengths() == {"c0": 4, "c1": 0}

    def test_capability_attributes(self):
        policy = RoundRobinPolicy()
        assert policy.name == "RR"
        assert policy.migration_count == 0

    def test_negative_start_index_rejected(self):
        with pytest.raises(SchedulingError):
            RoundRobinPolicy(start_index=-1)
