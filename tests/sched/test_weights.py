"""Thermal weight computation from the RC network."""

import pytest

from repro import units
from repro.errors import SchedulingError
from repro.geometry.stack import build_stack
from repro.sched.weights import ThermalWeights
from repro.thermal.grid import ThermalGrid
from repro.thermal.rc_network import ThermalParams, build_network


class TestNormalization:
    def test_mean_one(self):
        w = ThermalWeights({"a": 2.0, "b": 4.0})
        values = w.as_dict()
        assert sum(values.values()) / len(values) == pytest.approx(1.0)

    def test_relative_order_preserved(self):
        w = ThermalWeights({"a": 1.0, "b": 3.0})
        assert w["b"] == pytest.approx(3.0 * w["a"])

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            ThermalWeights({})

    def test_rejects_non_positive(self):
        with pytest.raises(SchedulingError):
            ThermalWeights({"a": 0.0})

    def test_unknown_core(self):
        with pytest.raises(SchedulingError):
            ThermalWeights({"a": 1.0})["b"]

    def test_uniform_factory(self):
        w = ThermalWeights.uniform(["a", "b", "c"])
        assert all(v == pytest.approx(1.0) for v in w.as_dict().values())


class TestFromNetwork:
    @pytest.fixture(scope="class")
    def liquid_low_flow(self):
        grid = ThermalGrid(build_stack(2), nx=12, ny=12)
        return build_network(
            grid, ThermalParams(), cavity_flows=[units.ml_per_minute(208.0)]
        )

    def test_covers_all_cores(self, liquid_low_flow):
        w = ThermalWeights.from_network(liquid_low_flow)
        assert set(w.as_dict()) == {f"core{i}" for i in range(8)}

    def test_all_positive_and_normalized(self, liquid_low_flow):
        w = ThermalWeights.from_network(liquid_low_flow)
        values = w.as_dict()
        assert all(v > 0 for v in values.values())
        assert sum(values.values()) / len(values) == pytest.approx(1.0)

    def test_downstream_cores_weighted_higher(self, liquid_low_flow):
        """Cores near the channel outlet see warmer coolant, so they
        can dissipate less power for a balanced temperature and must
        receive higher weights (fewer threads)."""
        w = ThermalWeights.from_network(liquid_low_flow).as_dict()
        # core0 is at the inlet end, core3 at the outlet end of a row.
        assert w["core3"] > w["core0"]

    def test_background_power_shifts_weights(self, liquid_low_flow):
        plain = ThermalWeights.from_network(liquid_low_flow).as_dict()
        loaded = ThermalWeights.from_network(
            liquid_low_flow, background_power=1.0
        ).as_dict()
        assert any(
            abs(plain[k] - loaded[k]) > 1.0e-6 for k in plain
        )

    def test_four_layer_has_16_cores(self):
        grid = ThermalGrid(build_stack(4), nx=10, ny=10)
        net = build_network(
            grid, ThermalParams(), cavity_flows=[units.ml_per_minute(125.0)]
        )
        w = ThermalWeights.from_network(net)
        assert len(w.as_dict()) == 16
