"""Reactive temperature-triggered migration."""

import pytest

from repro.errors import SchedulingError
from repro.sched.base import CoreQueues
from repro.sched.migration import ReactiveMigration
from repro.workload.threads import Thread


def fill(queues, counts):
    tid = 0
    for core, n in counts.items():
        for _ in range(n):
            queues.enqueue(core, Thread(tid, arrival=0.0, length=0.1))
            tid += 1


class TestMigration:
    def test_migrates_running_thread_from_hot_core(self):
        queues = CoreQueues(["hot", "cool"])
        fill(queues, {"hot": 1, "cool": 1})
        policy = ReactiveMigration(threshold_temperature=85.0)
        policy.rebalance(queues, {"hot": 88.0, "cool": 60.0}, 0.0)
        assert policy.migration_count == 1
        assert queues.lengths()["cool"] == 2

    def test_no_migration_below_threshold(self):
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 1, "b": 1})
        policy = ReactiveMigration(threshold_temperature=85.0)
        policy.rebalance(queues, {"a": 84.9, "b": 60.0}, 0.0)
        assert policy.migration_count == 0

    def test_penalty_charged_on_migration(self):
        queues = CoreQueues(["hot", "cool"])
        t = Thread(0, arrival=0.0, length=0.1)
        queues.enqueue("hot", t)
        policy = ReactiveMigration(penalty=0.02)
        policy.rebalance(queues, {"hot": 90.0, "cool": 60.0}, 0.0)
        assert t.remaining == pytest.approx(0.12)

    def test_hot_coolest_core_does_not_migrate_to_itself(self):
        queues = CoreQueues(["a"])
        fill(queues, {"a": 1})
        policy = ReactiveMigration()
        policy.rebalance(queues, {"a": 99.0}, 0.0)
        assert policy.migration_count == 0

    def test_performs_load_balancing_first(self):
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 6, "b": 0})
        policy = ReactiveMigration()
        policy.rebalance(queues, {"a": 60.0, "b": 60.0}, 0.0)
        lengths = queues.lengths()
        assert max(lengths.values()) - min(lengths.values()) <= 1

    def test_dispatch_is_plain_shortest(self):
        queues = CoreQueues(["a", "b"])
        fill(queues, {"a": 2, "b": 0})
        assert ReactiveMigration().dispatch_target(queues, {}) == "b"


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(SchedulingError):
            ReactiveMigration(threshold_temperature=0.0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(SchedulingError):
            ReactiveMigration(penalty=-0.1)
