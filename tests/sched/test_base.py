"""Per-core queues: the scheduler substrate."""

import pytest

from repro.errors import SchedulingError
from repro.sched.base import CoreQueues
from repro.workload.threads import Thread


def make_thread(tid, length=0.1):
    return Thread(tid, arrival=0.0, length=length)


@pytest.fixture
def queues():
    return CoreQueues(["core0", "core1", "core2"])


class TestBasicOps:
    def test_enqueue_and_lengths(self, queues):
        queues.enqueue("core0", make_thread(0))
        queues.enqueue("core0", make_thread(1))
        queues.enqueue("core1", make_thread(2))
        assert queues.lengths() == {"core0": 2, "core1": 1, "core2": 0}

    def test_total_threads(self, queues):
        for i in range(5):
            queues.enqueue("core0", make_thread(i))
        assert queues.total_threads() == 5

    def test_shortest_longest(self, queues):
        queues.enqueue("core1", make_thread(0))
        assert queues.shortest() == "core0"
        assert queues.longest() == "core1"

    def test_unknown_core(self, queues):
        with pytest.raises(SchedulingError):
            queues.enqueue("core9", make_thread(0))

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchedulingError):
            CoreQueues(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            CoreQueues([])


class TestMoveWaiting:
    def test_moves_from_tail(self, queues):
        head = make_thread(0)
        tail = make_thread(1)
        queues.enqueue("core0", head)
        queues.enqueue("core0", tail)
        moved = queues.move_waiting("core0", "core1", 1)
        assert moved == 1
        assert queues.queue("core0")[0] is head
        assert queues.queue("core1")[0] is tail

    def test_never_moves_running_head(self, queues):
        queues.enqueue("core0", make_thread(0))
        assert queues.move_waiting("core0", "core1", 5) == 0
        assert queues.lengths()["core0"] == 1

    def test_move_to_self_is_noop(self, queues):
        queues.enqueue("core0", make_thread(0))
        assert queues.move_waiting("core0", "core0", 1) == 0

    def test_conserves_threads(self, queues):
        for i in range(6):
            queues.enqueue("core0", make_thread(i))
        queues.move_waiting("core0", "core2", 3)
        assert queues.total_threads() == 6


class TestMigrateRunning:
    def test_moves_head_and_counts(self, queues):
        t = make_thread(0)
        queues.enqueue("core0", t)
        assert queues.migrate_running("core0", "core1")
        assert t.migrations == 1
        assert queues.lengths() == {"core0": 0, "core1": 1, "core2": 0}

    def test_penalty_charged(self, queues):
        t = make_thread(0, length=0.1)
        queues.enqueue("core0", t)
        queues.migrate_running("core0", "core1", penalty=0.01)
        assert t.remaining == pytest.approx(0.11)

    def test_empty_source(self, queues):
        assert not queues.migrate_running("core0", "core1")

    def test_negative_penalty_rejected(self, queues):
        queues.enqueue("core0", make_thread(0))
        with pytest.raises(SchedulingError):
            queues.migrate_running("core0", "core1", penalty=-1.0)
