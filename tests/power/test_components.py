"""Component power model (Section V constants and scaling)."""

import pytest

from repro.errors import ModelError
from repro.geometry.stack import build_stack
from repro.power.components import CoreState, PowerModel
from repro.power.leakage import LeakageModel


@pytest.fixture
def model():
    return PowerModel(build_stack(2), leakage=None)


@pytest.fixture
def model_with_leakage():
    return PowerModel(build_stack(2), leakage=LeakageModel())


class TestCorePower:
    def test_fully_active_is_3w(self, model):
        assert model.core_power(1.0, CoreState.ACTIVE) == pytest.approx(3.0)

    def test_idle_blend(self, model):
        assert model.core_power(0.5, CoreState.ACTIVE) == pytest.approx(
            0.5 * 3.0 + 0.5 * 1.0
        )

    def test_sleep_is_20mw(self, model):
        assert model.core_power(0.0, CoreState.SLEEP) == pytest.approx(0.02)

    def test_sleep_ignores_utilization(self, model):
        assert model.core_power(0.9, CoreState.SLEEP) == pytest.approx(0.02)

    def test_rejects_bad_utilization(self, model):
        with pytest.raises(ModelError):
            model.core_power(1.5, CoreState.ACTIVE)


class TestL2Power:
    def test_full_activity_is_cacti_value(self, model):
        assert model.l2_bank_power(1.0) == pytest.approx(1.28)

    def test_background_fraction(self, model):
        assert model.l2_bank_power(0.0) == pytest.approx(1.28 * 0.4)


class TestCrossbarPower:
    def test_peak(self, model):
        assert model.crossbar_power(1.0, 1.0) == pytest.approx(
            model.crossbar_peak
        )

    def test_floor(self, model):
        assert model.crossbar_power(0.0, 0.0) == pytest.approx(
            0.2 * model.crossbar_peak
        )

    def test_rejects_out_of_range(self, model):
        with pytest.raises(ModelError):
            model.crossbar_power(1.2, 0.5)
        with pytest.raises(ModelError):
            model.crossbar_power(0.5, -0.1)


class TestUnitPowers:
    def _inputs(self, util=0.5):
        names = [f"core{i}" for i in range(8)]
        return (
            {n: util for n in names},
            {n: CoreState.ACTIVE for n in names},
        )

    def test_covers_every_unit(self, model):
        core_util, states = self._inputs()
        powers = model.unit_powers(core_util, states, 0.5)
        expected_units = sum(len(d.floorplan.units) for d in model.stack.dies)
        assert len(powers) == expected_units

    def test_total_power_plausible(self, model):
        core_util, states = self._inputs(util=1.0)
        powers = model.unit_powers(core_util, states, 1.0)
        total = model.total_power(powers)
        # 8*3 + 4*1.28 + crossbars + misc: roughly 30-35 W (no leakage).
        assert 29.0 < total < 36.0

    def test_leakage_adds_power(self, model, model_with_leakage):
        core_util, states = self._inputs()
        base = model.total_power(model.unit_powers(core_util, states, 0.5))
        with_leak = model_with_leakage.total_power(
            model_with_leakage.unit_powers(core_util, states, 0.5)
        )
        assert with_leak > base + 2.0

    def test_leakage_grows_with_temperature(self, model_with_leakage):
        core_util, states = self._inputs()
        cold = {
            (d, u.name): 60.0
            for d, die in enumerate(model_with_leakage.stack.dies)
            for u in die.floorplan
        }
        hot = {k: 90.0 for k in cold}
        p_cold = model_with_leakage.total_power(
            model_with_leakage.unit_powers(core_util, states, 0.5, cold)
        )
        p_hot = model_with_leakage.total_power(
            model_with_leakage.unit_powers(core_util, states, 0.5, hot)
        )
        assert p_hot > p_cold + 1.0

    def test_sleeping_core_drops_to_sleep_power(self, model):
        core_util, states = self._inputs(util=0.0)
        states["core0"] = CoreState.SLEEP
        powers = model.unit_powers(core_util, states, 0.0)
        assert powers[(0, "core0")] == pytest.approx(0.02)

    def test_l2_bank_pairing(self, model):
        """Bank l2_k serves cores 2k and 2k+1: sleeping both cores
        drops that bank to its background power."""
        core_util, states = self._inputs(util=1.0)
        states["core0"] = CoreState.SLEEP
        states["core1"] = CoreState.SLEEP
        powers = model.unit_powers(core_util, states, 0.5)
        sleepy_bank = powers[(1, "l2_0")]
        busy_bank = powers[(1, "l2_1")]
        assert sleepy_bank == pytest.approx(1.28 * 0.4)
        assert busy_bank == pytest.approx(1.28)

    def test_bad_bank_name_raises(self, model):
        with pytest.raises(ModelError):
            model._bank_pair_utilization("l2cache", {}, {})


class TestFourLayer:
    def test_16_core_power(self):
        model = PowerModel(build_stack(4), leakage=None)
        names = [f"core{i}" for i in range(16)]
        powers = model.unit_powers(
            {n: 1.0 for n in names},
            {n: CoreState.ACTIVE for n in names},
            1.0,
        )
        core_total = sum(
            w for (d, name), w in powers.items() if name.startswith("core")
        )
        assert core_total == pytest.approx(48.0)
