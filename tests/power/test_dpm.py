"""DPM fixed-timeout policy (200 ms, Section V)."""

import pytest

from repro.errors import ConfigurationError
from repro.power.components import CoreState
from repro.power.dpm import DpmPolicy

CORES = ["core0", "core1"]


class TestTimeout:
    def test_sleeps_after_timeout(self):
        dpm = DpmPolicy(CORES, timeout=0.2)
        dpm.observe(0.0, {"core0": True, "core1": True})
        for t in (0.1, 0.2, 0.3):
            states = dpm.observe(t, {"core0": False, "core1": True})
        assert states["core0"] is CoreState.SLEEP
        assert states["core1"] is CoreState.ACTIVE

    def test_stays_idle_before_timeout(self):
        dpm = DpmPolicy(CORES, timeout=0.2)
        dpm.observe(0.0, {"core0": True, "core1": True})
        states = dpm.observe(0.1, {"core0": False, "core1": False})
        assert states["core0"] is CoreState.IDLE

    def test_busy_resets_the_clock(self):
        dpm = DpmPolicy(CORES, timeout=0.2)
        dpm.observe(0.0, {"core0": True})
        dpm.observe(0.15, {"core0": True})  # Busy again.
        states = dpm.observe(0.3, {"core0": False})
        assert states["core0"] is CoreState.IDLE  # Only idle 0.15 s.

    def test_wake_on_dispatch(self):
        dpm = DpmPolicy(CORES, timeout=0.2)
        dpm.observe(0.0, {"core0": False})
        dpm.observe(0.5, {"core0": False})
        assert dpm.state("core0") is CoreState.SLEEP
        dpm.wake("core0", 0.6)
        assert dpm.state("core0") is CoreState.ACTIVE


class TestDisabled:
    def test_never_sleeps_when_disabled(self):
        """The paper runs DPM only for the Figure 7 study."""
        dpm = DpmPolicy(CORES, timeout=0.2, enabled=False)
        dpm.observe(0.0, {"core0": False})
        states = dpm.observe(10.0, {"core0": False})
        assert states["core0"] is CoreState.IDLE


class TestValidation:
    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            DpmPolicy(CORES, timeout=0.0)

    def test_rejects_empty_cores(self):
        with pytest.raises(ConfigurationError):
            DpmPolicy([])

    def test_unknown_core(self):
        dpm = DpmPolicy(CORES)
        with pytest.raises(ConfigurationError):
            dpm.wake("core9", 0.0)
        with pytest.raises(ConfigurationError):
            dpm.state("core9")

    def test_states_returns_copy(self):
        dpm = DpmPolicy(CORES)
        states = dpm.states()
        states["core0"] = CoreState.SLEEP
        assert dpm.state("core0") is not CoreState.SLEEP
