"""Temperature-dependent leakage (polynomial after Su et al.)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.geometry.floorplan import UnitKind
from repro.power.leakage import LeakageModel

TEMPS = st.floats(min_value=20.0, max_value=120.0)


class TestTemperatureFactor:
    def test_unity_at_reference(self):
        model = LeakageModel()
        assert model.temperature_factor(model.reference_temperature) == 1.0

    @given(TEMPS, TEMPS)
    def test_monotone_above_reference(self, t1, t2):
        model = LeakageModel()
        lo, hi = sorted((max(t1, 60.0), max(t2, 60.0)))
        assert model.temperature_factor(lo) <= model.temperature_factor(hi) + 1e-12

    def test_realistic_growth_over_30k(self):
        """~1.6-1.7x from 60 to 90 degC for a 90 nm process."""
        model = LeakageModel()
        assert 1.4 < model.temperature_factor(90.0) < 1.9

    def test_clamped_at_low_temperature(self):
        model = LeakageModel(linear=0.05, quadratic=0.0)
        assert model.temperature_factor(-200.0) == pytest.approx(0.1)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ModelError):
            LeakageModel(linear=-0.01)


class TestUnitLeakage:
    def test_core_baseline(self):
        """~0.5 W per 10 mm^2 core at the reference point."""
        model = LeakageModel()
        watts = model.unit_leakage(UnitKind.CORE, 10.0e-6, 60.0)
        assert watts == pytest.approx(0.5, rel=1e-6)

    def test_l2_baseline(self):
        model = LeakageModel()
        watts = model.unit_leakage(UnitKind.L2, 19.0e-6, 60.0)
        assert watts == pytest.approx(0.304, rel=1e-3)

    def test_sleeping_core_is_power_gated(self):
        model = LeakageModel()
        assert model.unit_leakage(UnitKind.CORE, 10.0e-6, 90.0, asleep=True) == 0.0

    def test_sleeping_flag_ignored_for_caches(self):
        model = LeakageModel()
        assert model.unit_leakage(UnitKind.L2, 19.0e-6, 60.0, asleep=True) > 0.0

    def test_scales_with_area(self):
        model = LeakageModel()
        one = model.unit_leakage(UnitKind.MISC, 1.0e-6, 70.0)
        two = model.unit_leakage(UnitKind.MISC, 2.0e-6, 70.0)
        assert two == pytest.approx(2 * one)

    def test_rejects_bad_area(self):
        with pytest.raises(ModelError):
            LeakageModel().unit_leakage(UnitKind.CORE, 0.0, 60.0)

    def test_density_ordering(self):
        """Cores leak hardest per area, then caches, then misc."""
        model = LeakageModel()
        assert (
            model.density_for(UnitKind.CORE)
            > model.density_for(UnitKind.L2)
            > model.density_for(UnitKind.MISC)
        )
