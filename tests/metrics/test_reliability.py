"""Reliability proxies: Coffin-Manson cycling damage and Black's EM."""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.reliability import (
    coffin_manson_damage,
    electromigration_acceleration,
    relative_mttf,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_result


def cycling_result(amplitude, n=200, period=10):
    phase = (np.arange(n) % period) < (period // 2)
    series = np.where(phase, 70.0 - amplitude / 2, 70.0 + amplitude / 2)
    core_temps = np.column_stack([series, np.full(n, 70.0)])
    return make_result(np.full(n, 70.0), core_temperatures=core_temps)


class TestCoffinManson:
    def test_zero_for_constant_temperature(self):
        r = make_result(np.full(100, 70.0))
        assert coffin_manson_damage(r) == 0.0

    def test_bigger_cycles_much_more_damage(self):
        """Exponent q=3.5: doubling the swing multiplies damage ~11x."""
        small = coffin_manson_damage(cycling_result(10.0))
        large = coffin_manson_damage(cycling_result(20.0))
        assert large > 8.0 * small

    def test_sub_threshold_swings_elastic(self):
        r = cycling_result(1.0)
        assert coffin_manson_damage(r, minimum_delta=2.0) == 0.0

    def test_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            coffin_manson_damage(cycling_result(10.0), exponent=0.0)


class TestElectromigration:
    def test_unity_at_reference(self):
        r = make_result(np.full(50, 70.0))
        assert electromigration_acceleration(
            r, reference_temperature=70.0
        ) == pytest.approx(1.0)

    def test_hotter_run_accelerates(self):
        cool = make_result(np.full(50, 70.0))
        hot = make_result(np.full(50, 90.0))
        assert electromigration_acceleration(hot) > electromigration_acceleration(
            cool
        )

    def test_ten_kelvin_roughly_halves_life(self):
        """The folk rule: +10 K around 80 degC costs roughly 2x on EM
        life at Ea = 0.7 eV."""
        base = make_result(np.full(50, 75.0))
        hot = make_result(np.full(50, 85.0))
        ratio = relative_mttf(hot, base)
        assert 0.4 < ratio < 0.7

    def test_relative_mttf_symmetry(self):
        a = make_result(np.full(50, 72.0))
        b = make_result(np.full(50, 81.0))
        assert relative_mttf(a, b) == pytest.approx(1.0 / relative_mttf(b, a))

    def test_rejects_bad_activation_energy(self):
        with pytest.raises(ConfigurationError):
            electromigration_acceleration(make_result(np.full(5, 70.0)), 0.0)
