"""Energy accounting and normalization."""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.energy import (
    EnergyBreakdown,
    cooling_energy_savings,
    total_energy_savings,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_result


class TestBreakdown:
    def test_from_result(self):
        r = make_result(
            np.full(10, 70.0),
            chip_power=np.full(10, 30.0),
            pump_power=np.full(10, 21.0),
        )
        e = EnergyBreakdown.from_result(r)
        assert e.chip == pytest.approx(30.0)
        assert e.pump == pytest.approx(21.0)
        assert e.total == pytest.approx(51.0)

    def test_normalized_to_baseline_chip(self):
        """The figures normalize both bars by the baseline *chip*
        energy."""
        e = EnergyBreakdown(chip=36.0, pump=9.0)
        baseline = EnergyBreakdown(chip=30.0, pump=0.0)
        n = e.normalized(baseline)
        assert n.chip == pytest.approx(1.2)
        assert n.pump == pytest.approx(0.3)

    def test_normalized_rejects_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            EnergyBreakdown(1.0, 0.0).normalized(EnergyBreakdown(0.0, 0.0))


class TestSavings:
    def test_cooling_savings(self):
        var = EnergyBreakdown(chip=100.0, pump=14.0)
        mx = EnergyBreakdown(chip=100.0, pump=21.0)
        assert cooling_energy_savings(var, mx) == pytest.approx(1.0 / 3.0)

    def test_total_savings(self):
        var = EnergyBreakdown(chip=100.0, pump=14.0)
        mx = EnergyBreakdown(chip=100.0, pump=21.0)
        assert total_energy_savings(var, mx) == pytest.approx(7.0 / 121.0)

    def test_rejects_zero_pump_baseline(self):
        with pytest.raises(ConfigurationError):
            cooling_energy_savings(
                EnergyBreakdown(1.0, 0.0), EnergyBreakdown(1.0, 0.0)
            )
