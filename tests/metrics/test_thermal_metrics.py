"""Hot spots, spatial gradients, and thermal cycle counting."""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.thermal_metrics import (
    count_thermal_cycles,
    hotspot_frequency,
    spatial_gradient_frequency,
    thermal_cycle_frequency,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_result


class TestHotspots:
    def test_fraction_above_threshold(self):
        r = make_result(np.array([80.0, 86.0, 87.0, 70.0]))
        assert hotspot_frequency(r, threshold=85.0) == pytest.approx(50.0)

    def test_zero_when_cool(self):
        r = make_result(np.full(10, 60.0))
        assert hotspot_frequency(r) == 0.0


class TestSpatialGradients:
    def test_counts_large_spreads(self):
        unit_temps = np.array(
            [
                [60.0, 61.0, 62.0],   # Spread 2.
                [60.0, 70.0, 80.0],   # Spread 20 > 15.
                [65.0, 60.0, 81.0],   # Spread 21 > 15.
                [70.0, 70.0, 70.0],   # Spread 0.
            ]
        )
        r = make_result(np.full(4, 70.0), unit_temperatures=unit_temps)
        assert spatial_gradient_frequency(r, threshold=15.0) == pytest.approx(50.0)


class TestCycleCounting:
    def test_triangle_wave_counts_every_swing(self):
        # 4 swings of magnitude 30 each.
        series = np.array([50.0, 80.0, 50.0, 80.0, 50.0])
        assert count_thermal_cycles(series, threshold=20.0) == 4

    def test_small_swings_ignored(self):
        series = np.array([50.0, 55.0, 50.0, 55.0])
        assert count_thermal_cycles(series, threshold=20.0) == 0

    def test_monotone_ramp_is_one_swing(self):
        series = np.linspace(40.0, 90.0, 100)
        assert count_thermal_cycles(series, threshold=20.0) == 1

    def test_plateaus_do_not_break_extrema(self):
        series = np.array([50.0, 80.0, 80.0, 80.0, 50.0])
        assert count_thermal_cycles(series, threshold=20.0) == 2

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            count_thermal_cycles(np.ones(5), threshold=0.0)

    @given(
        st.lists(st.floats(min_value=40, max_value=100), min_size=2, max_size=60),
        st.floats(min_value=1.0, max_value=30.0),
    )
    def test_offset_invariance(self, values, threshold):
        series = np.asarray(values)
        shifted = series + 7.5
        assert count_thermal_cycles(series, threshold) == count_thermal_cycles(
            shifted, threshold
        )

    @given(
        st.lists(st.floats(min_value=40, max_value=100), min_size=2, max_size=60),
    )
    def test_monotone_in_threshold(self, values):
        series = np.asarray(values)
        loose = count_thermal_cycles(series, 5.0)
        strict = count_thermal_cycles(series, 25.0)
        assert strict <= loose


class TestCycleFrequency:
    def test_oscillating_core_counted(self):
        n = 200
        square = np.where(np.arange(n) % 10 < 5, 50.0, 75.0)
        core_temps = np.column_stack([square, np.full(n, 60.0)])
        r = make_result(np.full(n, 70.0), core_temperatures=core_temps)
        freq = thermal_cycle_frequency(r, threshold=20.0, window=50)
        assert freq > 0.0

    def test_stable_cores_zero(self):
        n = 200
        core_temps = np.column_stack([np.full(n, 70.0), np.full(n, 71.0)])
        r = make_result(np.full(n, 70.0), core_temperatures=core_temps)
        assert thermal_cycle_frequency(r, threshold=20.0) == 0.0
