"""Throughput normalization."""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.performance import normalized_throughput

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from helpers import make_result


class TestNormalizedThroughput:
    def test_equal_runs_give_one(self):
        a = make_result(np.full(10, 70.0), completed=np.full(10, 4))
        b = make_result(np.full(10, 70.0), completed=np.full(10, 4))
        assert normalized_throughput(a, b) == pytest.approx(1.0)

    def test_slower_run_below_one(self):
        slow = make_result(np.full(10, 70.0), completed=np.full(10, 3))
        fast = make_result(np.full(10, 70.0), completed=np.full(10, 4))
        assert normalized_throughput(slow, fast) == pytest.approx(0.75)

    def test_rejects_empty_baseline(self):
        a = make_result(np.full(10, 70.0), completed=np.full(10, 3))
        empty = make_result(np.full(10, 70.0), completed=np.zeros(10, dtype=int))
        with pytest.raises(ConfigurationError):
            normalized_throughput(a, empty)
