"""Pytest configuration: marker registration."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running calibration/figure sweeps"
    )
