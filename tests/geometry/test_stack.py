"""3D stack descriptions: layer/cavity/channel bookkeeping."""

import pytest

from repro.errors import GeometryError
from repro.geometry.floorplan import t1_core_layer
from repro.geometry.stack import CoolingKind, Die, Stack3D, build_stack


class TestBuildStack:
    def test_two_layer_structure(self):
        stack = build_stack(2)
        assert stack.n_dies == 2
        assert stack.dies[0].hosts_cores
        assert not stack.dies[1].hosts_cores

    def test_four_layer_structure(self):
        stack = build_stack(4)
        assert stack.n_dies == 4
        assert [d.hosts_cores for d in stack.dies] == [True, False, True, False]

    def test_paper_cavity_counts(self):
        # "cooling layers on the very top and the bottom": N+1 cavities.
        assert build_stack(2).n_cavities == 3
        assert build_stack(4).n_cavities == 5

    def test_paper_channel_counts(self):
        # "there are 195 and 325 microchannels in the 2- and 4-layered
        # systems, respectively."
        assert build_stack(2).n_channels == 195
        assert build_stack(4).n_channels == 325

    def test_air_cooling_has_no_cavities(self):
        stack = build_stack(2, CoolingKind.AIR)
        assert stack.n_cavities == 0

    def test_core_names_2layer(self):
        assert build_stack(2).core_names() == [f"core{i}" for i in range(8)]

    def test_core_names_4layer(self):
        assert build_stack(4).core_names() == [f"core{i}" for i in range(16)]

    def test_l2_names_4layer(self):
        assert build_stack(4).l2_names() == [f"l2_{i}" for i in range(8)]

    def test_rejects_other_layer_counts(self):
        for n in (0, 1, 3, 5, 8):
            with pytest.raises(GeometryError):
                build_stack(n)


class TestStack3D:
    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            Stack3D(name="bad", dies=(), cooling=CoolingKind.LIQUID)

    def test_rejects_mismatched_outlines(self):
        small = t1_core_layer("small")
        # Shrink by rebuilding a floorplan with different outline is
        # awkward; instead stack a die with a different object but same
        # dims is fine — so fabricate mismatch via direct construction.
        from repro.geometry.floorplan import Floorplan, Unit, UnitKind

        other = Floorplan(
            "tiny", 1.0e-3, 1.0e-3, [Unit("m", UnitKind.MISC, 0, 0, 1.0e-3, 1.0e-3)]
        )
        with pytest.raises(GeometryError, match="identical outlines"):
            Stack3D(
                name="bad",
                dies=(Die(small), Die(other)),
                cooling=CoolingKind.LIQUID,
            )

    def test_width_is_channel_direction(self):
        stack = build_stack(2)
        assert stack.width == pytest.approx(stack.dies[0].floorplan.width)

    def test_names(self):
        assert build_stack(2).name == "2-layer"
        assert build_stack(4).name == "4-layer"
