"""Floorplan geometry: T1-like layers, rasterization, validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import STACK
from repro.errors import GeometryError
from repro.geometry.floorplan import (
    Floorplan,
    Unit,
    UnitKind,
    t1_cache_layer,
    t1_core_layer,
)


class TestUnit:
    def test_area(self):
        u = Unit("u", UnitKind.MISC, 0.0, 0.0, 2.0e-3, 5.0e-3)
        assert u.area == pytest.approx(1.0e-5)

    def test_contains_half_open(self):
        u = Unit("u", UnitKind.MISC, 0.0, 0.0, 1.0, 1.0)
        assert u.contains(0.0, 0.0)
        assert u.contains(0.5, 0.99)
        assert not u.contains(1.0, 0.5)
        assert not u.contains(0.5, 1.0)

    def test_overlap_detection(self):
        a = Unit("a", UnitKind.MISC, 0.0, 0.0, 1.0, 1.0)
        b = Unit("b", UnitKind.MISC, 0.5, 0.5, 1.0, 1.0)
        c = Unit("c", UnitKind.MISC, 1.0, 0.0, 1.0, 1.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # Shared edge is not an overlap.

    def test_rejects_non_positive_size(self):
        with pytest.raises(GeometryError):
            Unit("bad", UnitKind.MISC, 0.0, 0.0, 0.0, 1.0)

    def test_rejects_negative_origin(self):
        with pytest.raises(GeometryError):
            Unit("bad", UnitKind.MISC, -0.1, 0.0, 1.0, 1.0)

    def test_center(self):
        u = Unit("u", UnitKind.MISC, 1.0, 2.0, 2.0, 4.0)
        assert u.center == (2.0, 4.0)


class TestCoreLayer:
    def test_core_count(self):
        assert len(t1_core_layer().units_of_kind(UnitKind.CORE)) == 8

    def test_core_area_matches_table3(self):
        for core in t1_core_layer().units_of_kind(UnitKind.CORE):
            assert core.area == pytest.approx(STACK.core_area, rel=1e-6)

    def test_layer_area_matches_table3(self):
        assert t1_core_layer().area == pytest.approx(STACK.layer_area, rel=1e-6)

    def test_units_tile_layer(self):
        fp = t1_core_layer()
        assert sum(u.area for u in fp) == pytest.approx(fp.area, rel=1e-6)

    def test_has_central_crossbar(self):
        fp = t1_core_layer()
        xbars = fp.units_of_kind(UnitKind.CROSSBAR)
        assert len(xbars) == 1
        cx, cy = xbars[0].center
        assert cx == pytest.approx(fp.width / 2, rel=1e-6)
        assert cy == pytest.approx(fp.height / 2, rel=1e-6)

    def test_core_offset_renames(self):
        fp = t1_core_layer(core_offset=8)
        names = {u.name for u in fp.units_of_kind(UnitKind.CORE)}
        assert names == {f"core{i}" for i in range(8, 16)}


class TestCacheLayer:
    def test_l2_count(self):
        assert len(t1_cache_layer().units_of_kind(UnitKind.L2)) == 4

    def test_l2_area_matches_table3(self):
        for bank in t1_cache_layer().units_of_kind(UnitKind.L2):
            assert bank.area == pytest.approx(STACK.l2_area, rel=1e-6)

    def test_layer_area(self):
        assert t1_cache_layer().area == pytest.approx(STACK.layer_area, rel=1e-6)

    def test_crossbars_align_between_layers(self):
        """TSVs must line up vertically: both crossbars sit centred."""
        core_xbar = t1_core_layer().unit("xbar")
        cache_xbar = t1_cache_layer().unit("xbar")
        assert core_xbar.x == pytest.approx(cache_xbar.x, rel=1e-6)
        assert core_xbar.width == pytest.approx(cache_xbar.width, rel=1e-6)


class TestFloorplanValidation:
    def test_rejects_overlapping_units(self):
        blocks = [
            Unit("a", UnitKind.MISC, 0.0, 0.0, 1.0, 1.0),
            Unit("b", UnitKind.MISC, 0.5, 0.0, 1.0, 1.0),
        ]
        with pytest.raises(GeometryError, match="overlap"):
            Floorplan("bad", 1.5, 1.0, blocks)

    def test_rejects_unit_outside(self):
        blocks = [Unit("a", UnitKind.MISC, 0.0, 0.0, 2.0, 1.0)]
        with pytest.raises(GeometryError, match="outside"):
            Floorplan("bad", 1.0, 1.0, blocks)

    def test_rejects_incomplete_coverage(self):
        blocks = [Unit("a", UnitKind.MISC, 0.0, 0.0, 0.5, 1.0)]
        with pytest.raises(GeometryError, match="tile"):
            Floorplan("bad", 1.0, 1.0, blocks)

    def test_rejects_duplicate_names(self):
        blocks = [
            Unit("a", UnitKind.MISC, 0.0, 0.0, 0.5, 1.0),
            Unit("a", UnitKind.MISC, 0.5, 0.0, 0.5, 1.0),
        ]
        with pytest.raises(GeometryError, match="duplicate"):
            Floorplan("bad", 1.0, 1.0, blocks)

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            Floorplan("bad", 1.0, 1.0, [])

    def test_unknown_unit_lookup(self):
        with pytest.raises(GeometryError, match="no unit"):
            t1_core_layer().unit("does-not-exist")


class TestRasterize:
    @pytest.mark.parametrize("fp", [t1_core_layer(), t1_cache_layer()])
    @pytest.mark.parametrize("n", [8, 16, 21])
    def test_all_cells_assigned(self, fp, n):
        raster = fp.rasterize(n, n)
        assert raster.shape == (n, n)
        assert raster.min() >= 0
        assert raster.max() < len(fp.units)

    def test_every_unit_gets_cells_at_16(self):
        fp = t1_core_layer()
        raster = fp.rasterize(16, 16)
        assert set(np.unique(raster)) == set(range(len(fp.units)))

    @given(st.integers(min_value=12, max_value=40))
    def test_cell_fractions_approximate_area_fractions(self, n):
        fp = t1_core_layer()
        fractions = fp.area_fractions(n, n)
        for unit, fraction in zip(fp.units, fractions):
            assert fraction == pytest.approx(unit.area / fp.area, abs=0.08)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(GeometryError):
            t1_core_layer().rasterize(0, 4)

    def test_unit_at_center_of_core(self):
        fp = t1_core_layer()
        core0 = fp.unit("core0")
        assert fp.unit_at(*core0.center) is core0

    def test_unit_at_outside_returns_none(self):
        fp = t1_core_layer()
        assert fp.unit_at(fp.width * 2, 0.0) is None
