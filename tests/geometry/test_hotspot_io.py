"""HotSpot .flp floorplan interoperability."""

import pytest

from repro.errors import GeometryError
from repro.geometry.floorplan import UnitKind, t1_cache_layer, t1_core_layer
from repro.geometry.hotspot_io import read_flp, write_flp


class TestRoundTrip:
    @pytest.mark.parametrize("fp", [t1_core_layer(), t1_cache_layer()])
    def test_write_read_round_trip(self, fp, tmp_path):
        path = tmp_path / "layer.flp"
        write_flp(fp, path)
        loaded = read_flp(path)
        assert len(loaded.units) == len(fp.units)
        assert loaded.width == pytest.approx(fp.width, rel=1e-5)
        assert loaded.height == pytest.approx(fp.height, rel=1e-5)
        for orig, back in zip(fp.units, loaded.units):
            assert back.name == orig.name
            assert back.area == pytest.approx(orig.area, rel=1e-5)
            assert back.kind == orig.kind

    def test_kind_inference(self, tmp_path):
        path = tmp_path / "named.flp"
        path.write_text(
            "core0\t1e-3\t1e-3\t0\t0\n"
            "l2_left\t1e-3\t1e-3\t1e-3\t0\n"
            "xbar\t1e-3\t1e-3\t0\t1e-3\n"
            "dram_ctl\t1e-3\t1e-3\t1e-3\t1e-3\n"
        )
        fp = read_flp(path)
        kinds = {u.name: u.kind for u in fp.units}
        assert kinds["core0"] is UnitKind.CORE
        assert kinds["l2_left"] is UnitKind.L2
        assert kinds["xbar"] is UnitKind.CROSSBAR
        assert kinds["dram_ctl"] is UnitKind.MISC


class TestParsing:
    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.flp"
        path.write_text(
            "# header\n\n"
            "a\t1e-3\t1e-3\t0\t0\n"
            "# tail comment\n"
            "b\t1e-3\t1e-3\t1e-3\t0\n"
        )
        assert len(read_flp(path).units) == 2

    def test_rejects_short_lines(self, tmp_path):
        path = tmp_path / "bad.flp"
        path.write_text("a\t1e-3\t1e-3\n")
        with pytest.raises(GeometryError, match="expected 5 fields"):
            read_flp(path)

    def test_rejects_bad_numbers(self, tmp_path):
        path = tmp_path / "bad.flp"
        path.write_text("a\tx\t1e-3\t0\t0\n")
        with pytest.raises(GeometryError, match="bad number"):
            read_flp(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.flp"
        path.write_text("# nothing\n")
        with pytest.raises(GeometryError, match="no units"):
            read_flp(path)

    def test_rejects_overlapping_floorplan(self, tmp_path):
        path = tmp_path / "overlap.flp"
        path.write_text(
            "a\t1e-3\t1e-3\t0\t0\n"
            "b\t1e-3\t1e-3\t5e-4\t0\n"
        )
        with pytest.raises(GeometryError):
            read_flp(path)
