"""The component registry: lookup, schemas, traits, immutable params."""

import pytest

from repro.errors import ConfigurationError
from repro.registry import (
    FrozenParams,
    ParamSpec,
    Registry,
    controller_registry,
    forecaster_registry,
    policy_registry,
)
from repro.sim.config import ControllerKind, PolicyKind


class TestFrozenParams:
    def test_mapping_semantics_and_hash(self):
        params = FrozenParams({"kp": 1.5, "kd": 0.5})
        assert params["kp"] == 1.5
        assert len(params) == 2
        assert dict(params) == {"kd": 0.5, "kp": 1.5}
        # Declaration order is irrelevant: one canonical identity.
        other = FrozenParams({"kd": 0.5, "kp": 1.5})
        assert params == other
        assert hash(params) == hash(other)

    def test_sorted_canonical_iteration(self):
        params = FrozenParams({"z": 1, "a": 2, "m": 3})
        assert list(params) == ["a", "m", "z"]
        assert list(params.to_dict()) == ["a", "m", "z"]

    def test_compares_equal_to_plain_mappings(self):
        assert FrozenParams({"a": 1}) == {"a": 1}
        assert FrozenParams() == {}

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError, match="scalar"):
            FrozenParams({"a": [1, 2]})
        with pytest.raises(ConfigurationError, match="strings"):
            FrozenParams({1: 2.0})


class TestParamSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kind"):
            ParamSpec("x", "complex")

    def test_int_accepted_for_float_and_canonicalized(self):
        spec = ParamSpec("kp", "float")
        value = spec.coerce(2, "test")
        assert value == 2.0 and isinstance(value, float)

    def test_bool_rejected_for_numeric_kinds(self):
        with pytest.raises(ConfigurationError, match="float"):
            ParamSpec("kp", "float").coerce(True, "test")
        with pytest.raises(ConfigurationError, match="int"):
            ParamSpec("n", "int").coerce(False, "test")

    def test_fractional_rejected_for_int(self):
        with pytest.raises(ConfigurationError, match="integer"):
            ParamSpec("n", "int").coerce(1.5, "test")

    def test_bounds_enforced(self):
        spec = ParamSpec("n", "int", minimum=1, maximum=8)
        assert spec.coerce(8, "test") == 8
        with pytest.raises(ConfigurationError, match=">= 1"):
            spec.coerce(0, "test")
        with pytest.raises(ConfigurationError, match="<= 8"):
            spec.coerce(9, "test")


class TestRegistry:
    def _registry(self):
        reg = Registry("widget")
        reg.register(
            "Alpha",
            lambda ctx, **kw: ("alpha", ctx, kw),
            params=(ParamSpec("gain", "float", default=1.0),),
            aliases=("a",),
            traits={"fancy": True},
        )
        return reg

    def test_normalize_is_case_insensitive_and_alias_aware(self):
        reg = self._registry()
        for spelling in ("Alpha", "alpha", "ALPHA", "a", "A"):
            assert reg.normalize(spelling) == "Alpha"

    def test_unknown_key_lists_choices(self):
        reg = self._registry()
        with pytest.raises(ConfigurationError, match="choose from Alpha"):
            reg.normalize("beta")

    def test_duplicate_key_and_alias_collisions_rejected(self):
        reg = self._registry()
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("Alpha", lambda ctx: None)
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("Beta", lambda ctx: None, aliases=("a",))

    def test_replace_reregisters(self):
        reg = self._registry()
        reg.register("Alpha", lambda ctx, **kw: "v2", replace=True)
        assert reg.create("alpha") == "v2"
        # The old alias was dropped with the old entry.
        with pytest.raises(ConfigurationError):
            reg.normalize("a")

    def test_replace_cannot_steal_another_entrys_name(self):
        """replace=True re-binds one's own key; hijacking a different
        entry's key or alias must still refuse."""
        reg = self._registry()
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("Beta", lambda ctx: None, aliases=("a",), replace=True)
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("ALPHA", lambda ctx: None, replace=True)
        assert reg.normalize("a") == "Alpha"  # Untouched.

    def test_validate_params_rejects_unknown_names(self):
        reg = self._registry()
        with pytest.raises(ConfigurationError, match="no parameter 'oops'"):
            reg.validate_params("Alpha", {"oops": 1})

    def test_create_passes_context_and_coerced_params(self):
        reg = self._registry()
        kind, ctx, kwargs = reg.create("a", {"gain": 3}, context="CTX")
        assert (kind, ctx) == ("alpha", "CTX")
        assert kwargs == {"gain": 3.0}
        assert isinstance(kwargs["gain"], float)

    def test_traits_and_contains(self):
        reg = self._registry()
        assert reg.get("alpha").trait("fancy") is True
        assert reg.get("alpha").trait("absent") is False
        assert "a" in reg and "beta" not in reg

    def test_unregister(self):
        reg = self._registry()
        reg.unregister("alpha")
        assert len(reg) == 0
        reg.unregister("alpha")  # idempotent


class TestBuiltinRegistrations:
    def test_policy_keys_match_legacy_enum_values(self):
        keys = set(policy_registry().keys())
        assert {member.value for member in PolicyKind} <= keys
        assert "RR" in keys  # The registry-only baseline.

    def test_controller_keys(self):
        keys = set(controller_registry().keys())
        assert {member.value for member in ControllerKind} <= keys
        assert "pid" in keys

    def test_forecaster_keys(self):
        assert {"arma", "persistence"} <= set(forecaster_registry().keys())

    def test_enum_members_normalize(self):
        assert policy_registry().normalize(PolicyKind.MIGRATION) == "Mig"
        assert controller_registry().normalize(ControllerKind.LUT) == "lut"

    def test_capability_traits(self):
        assert policy_registry().get("TALB").trait("uses_thermal_weights")
        assert not policy_registry().get("LB").trait("uses_thermal_weights")
        assert controller_registry().get("lut").trait("needs_flow_table")
        assert not controller_registry().get("pid").trait("needs_flow_table")
