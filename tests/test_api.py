"""The public API surface: everything advertised imports and exists."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", repro.__all__)
    def test_every_export_resolves(self, name):
        assert getattr(repro, name) is not None

    def test_quickstart_types_compose(self):
        """The README quickstart's objects exist and wire together."""
        config = repro.SimulationConfig(
            benchmark_name="gzip",
            policy=repro.PolicyKind.LB,
            cooling=repro.CoolingMode.AIR,
            duration=1.0,
        )
        assert config.label() == "LB (Air)"

    def test_error_hierarchy(self):
        for exc in (
            repro.ConfigurationError,
            repro.GeometryError,
            repro.ModelError,
            repro.SolverError,
            repro.ControlError,
            repro.WorkloadError,
            repro.SchedulingError,
        ):
            assert issubclass(exc, repro.ReproError)

    def test_constants_singletons(self):
        assert repro.MICROCHANNEL.channels_per_cavity == 65
        assert repro.CONTROL.target_temperature == 80.0
