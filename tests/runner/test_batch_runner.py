"""Batch runner: parallel/serial equivalence, ordering, and export."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.batch import config_descriptor, save_batch, write_batch_csv
from repro.io.serialize import result_from_payload
from repro.runner import BatchRunner, reseeded
from repro.sim.cache import CharacterizationCache
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.workload.benchmarks import benchmark
from repro.workload.generator import WorkloadGenerator


def _configs():
    return [
        SimulationConfig(
            benchmark_name="gzip",
            policy=PolicyKind.TALB,
            cooling=CoolingMode.LIQUID_VARIABLE,
            duration=2.0,
            seed=1,
        ),
        SimulationConfig(
            benchmark_name="Web-high",
            policy=PolicyKind.LB,
            cooling=CoolingMode.AIR,
            duration=2.0,
            seed=2,
        ),
        SimulationConfig(
            benchmark_name="Database",
            policy=PolicyKind.MIGRATION,
            cooling=CoolingMode.LIQUID_MAX,
            duration=2.0,
            seed=3,
        ),
    ]


def _assert_identical(a, b):
    for name in (
        "times",
        "tmax",
        "tmax_cell",
        "core_temperatures",
        "unit_temperatures",
        "chip_power",
        "pump_power",
        "flow_setting",
        "completed_threads",
        "migrations",
    ):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    # NaN-aware comparison for the forecast series.
    assert np.array_equal(a.forecast_tmax, b.forecast_tmax, equal_nan=True)
    assert a.sojourn_sum == b.sojourn_sum
    assert a.sojourn_count == b.sojourn_count
    assert a.retrain_count == b.retrain_count


class TestParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self):
        configs = _configs()
        serial = BatchRunner(configs, cache=CharacterizationCache()).run()
        parallel = BatchRunner(
            configs, max_workers=2, cache=CharacterizationCache()
        ).run()
        assert serial.n_workers == 1
        assert parallel.n_workers == 2
        assert len(serial) == len(parallel) == len(configs)
        for run_s, run_p in zip(serial.runs, parallel.runs):
            assert run_s.index == run_p.index
            assert run_s.config == run_p.config
            _assert_identical(run_s.result, run_p.result)

    def test_results_in_submission_order(self):
        configs = _configs()
        batch = BatchRunner(
            configs, max_workers=3, cache=CharacterizationCache()
        ).run()
        assert [run.index for run in batch.runs] == [0, 1, 2]
        assert [run.config.benchmark_name for run in batch.runs] == [
            "gzip",
            "Web-high",
            "Database",
        ]

    def test_shared_trace_used(self):
        config = SimulationConfig(
            benchmark_name="gzip",
            policy=PolicyKind.LB,
            cooling=CoolingMode.AIR,
            duration=2.0,
            seed=7,
        )
        trace = WorkloadGenerator(
            benchmark("gzip"), n_cores=config.n_cores, seed=123
        ).generate(config.duration)
        with_trace = BatchRunner(
            [config], traces=[trace], cache=CharacterizationCache()
        ).run()
        without = BatchRunner([config], cache=CharacterizationCache()).run()
        # The explicit trace (seed 123) differs from the config's own
        # (seed 7), so the runs must differ.
        assert (
            with_trace.results[0].total_completed()
            != without.results[0].total_completed()
            or not np.array_equal(with_trace.results[0].tmax, without.results[0].tmax)
        )


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchRunner([])

    def test_trace_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(_configs(), traces=[None])

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchRunner(_configs(), max_workers=0)

    def test_workers_capped_at_batch_size(self):
        runner = BatchRunner(_configs(), max_workers=64)
        assert runner.max_workers == 3


class TestReseeding:
    def test_reseeded_assigns_sequential_seeds(self):
        base = SimulationConfig(benchmark_name="gzip", duration=2.0, seed=0)
        out = reseeded([base] * 4, base_seed=100)
        assert [c.seed for c in out] == [100, 101, 102, 103]
        # Everything else is untouched.
        assert all(c.benchmark_name == "gzip" for c in out)

    def test_reseeded_runs_are_distinct_but_reproducible(self):
        base = SimulationConfig(
            benchmark_name="Web-high",
            policy=PolicyKind.LB,
            cooling=CoolingMode.AIR,
            duration=2.0,
        )
        configs = reseeded([base] * 2, base_seed=50)
        first = BatchRunner(configs, cache=CharacterizationCache()).run()
        again = BatchRunner(configs, cache=CharacterizationCache()).run()
        assert not np.array_equal(first.results[0].tmax, first.results[1].tmax)
        _assert_identical(first.results[0], again.results[0])
        _assert_identical(first.results[1], again.results[1])


class TestExport:
    @pytest.fixture(scope="class")
    def batch(self):
        return BatchRunner(_configs()[:2], cache=CharacterizationCache()).run()

    def test_summary_rows(self, batch):
        rows = batch.summary_rows()
        assert len(rows) == 2
        assert rows[0]["label"] == "TALB (Var)"
        assert rows[0]["benchmark"] == "gzip"
        assert rows[0]["peak_temperature_sensor"] > 0.0
        assert rows[0]["elapsed_s"] > 0.0

    def test_config_descriptor_round_trips_enums(self):
        desc = config_descriptor(_configs()[0])
        assert desc["policy"] == "TALB"
        assert desc["cooling"] == "Var"
        assert desc["label"] == "TALB (Var)"

    def test_save_batch_json(self, batch, tmp_path):
        path = tmp_path / "batch.json"
        save_batch(batch, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["n_runs"] == 2
        assert payload["runs"][0]["config"]["benchmark"] == "gzip"
        assert "result" not in payload["runs"][0]

    def test_save_batch_with_series_reloads(self, batch, tmp_path):
        path = tmp_path / "batch_full.json"
        save_batch(batch, path, include_series=True)
        payload = json.loads(path.read_text())
        restored = result_from_payload(payload["runs"][0]["result"])
        _assert_identical(restored, batch.results[0])

    def test_write_batch_csv(self, batch, tmp_path):
        path = tmp_path / "batch.csv"
        write_batch_csv(batch, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 runs
        assert lines[0].startswith(
            "run,benchmark,policy,policy_params,cooling,controller"
        )
