"""Cohort execution: grouping partitions any expansion, kernels are
shared (no re-factorization), and exact mode is byte-identical to the
serial per-run path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.runner import (
    BatchRunner,
    CohortRunner,
    cohort_signature,
    group_cohorts,
)
from repro.runner.cohort import split_cohort
from repro.sim import engine
from repro.sim.cache import CharacterizationCache, clear_system_memo
from repro.sim.config import CoolingMode, SimulationConfig
from repro.sweep import SweepSpec
from repro.thermal.solver import factorization_count

RESULT_ARRAYS = (
    "times", "tmax", "tmax_cell", "core_temperatures", "unit_temperatures",
    "chip_power", "pump_power", "flow_setting", "completed_threads",
    "forecast_tmax", "migrations",
)


def assert_results_identical(a, b):
    """Bitwise equality of two SimulationResults (NaN == NaN)."""
    for name in RESULT_ARRAYS:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )
    assert a.unit_names == b.unit_names
    assert a.core_names == b.core_names
    assert a.retrain_count == b.retrain_count
    assert a.sojourn_sum == b.sojourn_sum
    assert a.sojourn_count == b.sojourn_count


def policy_seed_configs(n=4, duration=0.5, **overrides):
    """n same-network configs differing only in policy/seed."""
    kwargs = dict(nx=12, ny=12, duration=duration)
    kwargs.update(overrides)
    configs = [
        SimulationConfig(policy=policy, seed=seed, **kwargs)
        for seed in (0, 1)
        for policy in ("TALB", "LB", "Mig", "RR")
    ]
    return configs[:n]


# Axis values the property test draws sweep grids from — all jointly
# valid, spanning every field of the cohort signature plus fields that
# must NOT affect it (policy, seed, benchmark).
AXES = {
    "policy": ("TALB", "LB", "RR"),
    "benchmark_name": ("gzip", "Web-med"),
    "nx": (6, 8),
    "n_layers": (2, 4),
    "cooling": ("Var", "Max", "Air"),
    "sampling_interval": (0.1, 0.2),
    "seed": (0, 1),
}


@st.composite
def sweep_grids(draw):
    names = draw(
        st.lists(
            st.sampled_from(sorted(AXES)), unique=True, min_size=1, max_size=4
        )
    )
    return {
        name: draw(
            st.lists(
                st.sampled_from(AXES[name]),
                unique=True,
                min_size=1,
                max_size=len(AXES[name]),
            )
        )
        for name in names
    }


class TestGroupingPartition:
    @given(grid=sweep_grids())
    @settings(max_examples=30, deadline=None)
    def test_grouping_partitions_any_expansion(self, grid):
        """Every run lands in exactly one cohort, cohorts agree on
        their thermal signature, and distinct cohorts differ."""
        spec = SweepSpec(
            base=SimulationConfig(duration=0.3, nx=8, ny=8),
            grid=grid,
            name="prop",
        )
        configs = [point.config for point in spec.iter_points()]
        cohorts = group_cohorts(configs)
        flat = sorted(i for members in cohorts for i in members)
        assert flat == list(range(len(configs)))
        for members in cohorts:
            assert members == sorted(members)
            signatures = {cohort_signature(configs[i]) for i in members}
            assert len(signatures) == 1
        firsts = [cohort_signature(configs[members[0]]) for members in cohorts]
        assert len(set(firsts)) == len(firsts)

    def test_signature_ignores_non_thermal_fields(self):
        base = SimulationConfig(duration=0.5)
        same = SimulationConfig(
            duration=9.0, policy="RR", seed=7, benchmark_name="gzip"
        )
        assert cohort_signature(base) == cohort_signature(same)
        for override in (
            {"nx": 8}, {"ny": 8}, {"n_layers": 4},
            {"cooling": CoolingMode.AIR}, {"sampling_interval": 0.2},
        ):
            other = SimulationConfig(duration=0.5, **override)
            assert cohort_signature(base) != cohort_signature(other)

    def test_singletons_fall_back_to_serial_groups(self):
        """An all-distinct-signature batch plans one group per run."""
        configs = [
            SimulationConfig(nx=nx, ny=nx, duration=0.3) for nx in (6, 8, 10)
        ]
        batch = BatchRunner(configs, cohort="exact")
        assert batch._plan_groups() == [[0], [1], [2]]

    def test_split_cohort_is_balanced_and_ordered(self):
        members = list(range(10))
        for parts in (1, 2, 3, 4, 10, 99):
            slices = split_cohort(members, parts)
            assert [i for part in slices for i in part] == members
            sizes = [len(part) for part in slices]
            assert max(sizes) - min(sizes) <= 1
            assert len(slices) == min(parts, len(members))

    def test_unknown_cohort_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="cohort mode"):
            BatchRunner(policy_seed_configs(1), cohort="banana")


class TestTwoPhaseStep:
    def test_begin_solve_finish_matches_fused_step(self):
        config = SimulationConfig(duration=1.0, nx=12, ny=12)
        fused = engine.Simulator(config)
        split = engine.Simulator(config)
        expected = fused.run()
        while not split.finished:
            pending = split.step_begin()
            solver = split.system.transient_solver(
                pending.setting, config.sampling_interval
            )
            solved = solver.step(pending.temperatures, pending.node_power)
            split.step_finish(pending, solved)
        assert_results_identical(expected, split.result())

    def test_double_begin_raises(self):
        sim = engine.Simulator(SimulationConfig(duration=0.5, nx=8, ny=8))
        sim.step_begin()
        with pytest.raises(ConfigurationError, match="pending"):
            sim.step_begin()

    def test_finish_without_begin_raises(self):
        config = SimulationConfig(duration=0.5, nx=8, ny=8)
        sim = engine.Simulator(config)
        pending = sim.step_begin()
        sim.step_finish(pending, pending.temperatures)
        with pytest.raises(ConfigurationError, match="pending"):
            sim.step_finish(pending, pending.temperatures)

    def test_shared_initial_state_is_bitwise(self):
        config = SimulationConfig(duration=0.5, nx=12, ny=12)
        plain = engine.Simulator(config)
        injected = engine.Simulator(config)
        injected.set_initial_temperatures(
            injected.steady_initial_temperatures()
        )
        assert_results_identical(plain.run(), injected.run())

    def test_set_initial_after_start_raises(self):
        sim = engine.Simulator(SimulationConfig(duration=0.5, nx=8, ny=8))
        sim.step()
        with pytest.raises(ConfigurationError, match="before the first step"):
            sim.set_initial_temperatures(np.zeros(3))


class TestCohortByteIdentity:
    def test_exact_cohort_equals_serial(self):
        configs = policy_seed_configs(6)
        serial = BatchRunner(configs, cohort="off").run()
        cohort = CohortRunner(configs).run()
        assert [r.index for r in cohort.runs] == list(range(len(configs)))
        for a, b in zip(serial.runs, cohort.runs):
            assert_results_identical(a.result, b.result)

    def test_exact_cohort_equals_serial_parallel(self):
        configs = policy_seed_configs(4, duration=0.3)
        serial = BatchRunner(configs, cohort="off").run()
        cohort = BatchRunner(configs, cohort="auto", max_workers=2).run()
        for a, b in zip(serial.runs, cohort.runs):
            assert_results_identical(a.result, b.result)

    def test_mixed_networks_partition_and_match(self):
        """Two interleaved cohorts plus a singleton, exact vs serial."""
        configs = []
        for seed in (0, 1):
            configs.append(SimulationConfig(seed=seed, nx=12, ny=12, duration=0.4))
            configs.append(SimulationConfig(seed=seed, nx=8, ny=8, duration=0.4))
        configs.append(SimulationConfig(cooling=CoolingMode.AIR, nx=8, ny=8, duration=0.4))
        assert [len(c) for c in group_cohorts(configs)] == [2, 2, 1]
        serial = BatchRunner(configs, cohort="off").run()
        cohort = CohortRunner(configs).run()
        for a, b in zip(serial.runs, cohort.runs):
            assert_results_identical(a.result, b.result)

    def test_block_mode_is_lu_roundoff_equivalent(self):
        configs = policy_seed_configs(6)
        serial = BatchRunner(configs, cohort="off").run()
        block = CohortRunner(configs, block=True).run()
        for a, b in zip(serial.runs, block.runs):
            np.testing.assert_allclose(
                a.result.unit_temperatures,
                b.result.unit_temperatures,
                rtol=0, atol=1e-6,
            )
            np.testing.assert_allclose(
                a.result.tmax, b.result.tmax, rtol=0, atol=1e-6
            )


class TestFactorizationSharing:
    def test_warm_cohort_adds_no_factorizations(self):
        """The algorithmic perf gate: a warm cohort campaign performs
        zero LU factorizations — every (network, dt) system is hit at
        most once per process, however many runs step through it."""
        configs = policy_seed_configs(8, duration=0.3)
        CohortRunner(configs).run()
        before = factorization_count()
        CohortRunner(configs).run()
        assert factorization_count() == before

    def test_cold_factorizations_independent_of_cohort_size(self):
        """<=1 factorization per network: 8 runs through one network
        factorize exactly as much as 2 runs (cooling Max pins the pump,
        so the visited settings cannot differ)."""

        def cold_count(n):
            clear_system_memo()
            configs = policy_seed_configs(n, duration=0.3, cooling=CoolingMode.LIQUID_MAX)
            before = factorization_count()
            CohortRunner(configs, cache=CharacterizationCache()).run()
            return factorization_count() - before

        assert cold_count(8) == cold_count(2)
