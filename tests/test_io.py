"""Result serialization: JSON round-trip, summaries, CSV export."""

import csv
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.serialize import (
    load_result,
    result_summary,
    save_result,
    write_timeseries_csv,
)

sys.path.insert(0, str(Path(__file__).resolve().parent))
from helpers import make_result


@pytest.fixture
def result():
    rng = np.random.default_rng(0)
    tmax = 70.0 + rng.normal(0, 1.0, 30)
    r = make_result(
        tmax,
        chip_power=np.full(30, 30.0),
        pump_power=np.full(30, 10.0),
        completed=rng.integers(0, 4, 30),
    )
    # Leave some NaNs in the forecast to exercise the encoder.
    r.forecast_tmax[5:] = tmax[5:] + 0.1
    return r


class TestSummary:
    def test_summary_fields(self, result):
        summary = result_summary(result)
        assert summary["intervals"] == 30
        assert summary["chip_energy_j"] == pytest.approx(result.chip_energy())
        assert summary["pump_energy_j"] == pytest.approx(result.pump_energy())
        assert summary["mean_flow_setting"] is None  # Air-style result.

    def test_summary_is_json_serializable(self, result):
        json.dumps(result_summary(result))


class TestJsonRoundTrip:
    def test_round_trip_preserves_series(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result(path)
        assert np.allclose(loaded.times, result.times)
        assert np.allclose(loaded.tmax, result.tmax)
        assert np.allclose(loaded.core_temperatures, result.core_temperatures)
        assert np.array_equal(loaded.flow_setting, result.flow_setting)
        assert loaded.core_names == result.core_names
        # NaNs survive the None encoding.
        assert np.isnan(loaded.forecast_tmax[0])
        assert np.allclose(
            loaded.forecast_tmax[5:], result.forecast_tmax[5:]
        )

    def test_round_trip_preserves_derived_quantities(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.chip_energy() == pytest.approx(result.chip_energy())
        assert loaded.throughput() == pytest.approx(result.throughput())

    def test_rejects_unknown_version(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="version"):
            load_result(path)


class TestCsv:
    def test_csv_shape_and_values(self, result, tmp_path):
        path = tmp_path / "run.csv"
        write_timeseries_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 31  # Header + 30 intervals.
        header = rows[0]
        assert header[0] == "time_s"
        assert f"T[{result.core_names[0]}]" in header
        assert float(rows[1][1]) == pytest.approx(result.tmax[0], abs=1e-3)

    def test_csv_nan_forecast_is_empty_cell(self, result, tmp_path):
        path = tmp_path / "run.csv"
        write_timeseries_csv(result, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        forecast_col = rows[0].index("forecast_tmax")
        assert rows[1][forecast_col] == ""
