"""Table I, Table III, and Section IV/V constants match the paper."""

import pytest

from repro import units
from repro.constants import CONTROL, MICROCHANNEL, POWER, STACK


class TestTableI:
    def test_r_beol_value(self):
        assert MICROCHANNEL.r_beol == pytest.approx(units.k_mm2_per_w(5.333))

    def test_r_beol_consistent_with_eq3(self):
        # Eq. 3: R_th-BEOL = t_B / k_BEOL = 12 um / 2.25 W/mK.
        assert MICROCHANNEL.t_beol / MICROCHANNEL.k_beol == pytest.approx(
            MICROCHANNEL.r_beol, rel=1.0e-3
        )

    def test_coolant_properties(self):
        assert MICROCHANNEL.coolant_heat_capacity == 4183.0
        assert MICROCHANNEL.coolant_density == 998.0

    def test_flow_rate_range_per_cavity(self):
        assert MICROCHANNEL.flow_rate_min == pytest.approx(
            units.litres_per_minute(0.1)
        )
        assert MICROCHANNEL.flow_rate_max == pytest.approx(
            units.litres_per_minute(1.0)
        )

    def test_heat_transfer_coefficient(self):
        assert MICROCHANNEL.heat_transfer_coefficient == 37132.0

    def test_channel_dimensions(self):
        assert MICROCHANNEL.channel_width == pytest.approx(units.um(50))
        assert MICROCHANNEL.channel_height == pytest.approx(units.um(100))
        assert MICROCHANNEL.wall_thickness == pytest.approx(units.um(50))
        assert MICROCHANNEL.channel_pitch == pytest.approx(units.um(100))

    def test_channels_per_cavity(self):
        assert MICROCHANNEL.channels_per_cavity == 65


class TestTableIII:
    def test_die_thickness(self):
        assert STACK.die_thickness == pytest.approx(units.mm(0.15))

    def test_areas(self):
        assert STACK.core_area == pytest.approx(units.mm2(10))
        assert STACK.l2_area == pytest.approx(units.mm2(19))
        assert STACK.layer_area == pytest.approx(units.mm2(115))

    def test_package_convection(self):
        assert STACK.convection_capacitance == 140.0
        assert STACK.convection_resistance == 0.1

    def test_interlayer(self):
        assert STACK.interlayer_thickness == pytest.approx(units.mm(0.02))
        assert STACK.interlayer_thickness_with_channels == pytest.approx(units.mm(0.4))
        assert STACK.interlayer_resistivity == 0.25

    def test_tsv_parameters(self):
        assert STACK.tsv_count_per_interface == 128
        assert STACK.tsv_side == pytest.approx(units.um(50))
        assert STACK.tsv_pitch == pytest.approx(units.um(100))


class TestSectionV:
    def test_core_powers(self):
        assert POWER.core_active_power == 3.0
        assert POWER.core_sleep_power == 0.02

    def test_l2_power(self):
        assert POWER.l2_power == 1.28

    def test_dpm_timeout(self):
        assert POWER.dpm_timeout == pytest.approx(0.2)


class TestSectionIV:
    def test_sampling_and_horizon(self):
        assert CONTROL.sampling_interval == pytest.approx(0.1)
        assert CONTROL.forecast_horizon == pytest.approx(0.5)

    def test_temperatures(self):
        assert CONTROL.target_temperature == 80.0
        assert CONTROL.hotspot_threshold == 85.0

    def test_hysteresis(self):
        assert CONTROL.hysteresis == 2.0

    def test_pump_transition_in_paper_range(self):
        assert 0.25 <= CONTROL.pump_transition_time <= 0.3

    def test_variation_thresholds(self):
        assert CONTROL.spatial_gradient_threshold == 15.0
        assert CONTROL.thermal_cycle_threshold == 20.0

    def test_horizon_is_five_samples(self):
        steps = CONTROL.forecast_horizon / CONTROL.sampling_interval
        assert steps == pytest.approx(5.0)
