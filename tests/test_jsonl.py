"""Crash-consistent JSONL plumbing (repro.io.jsonl)."""

import json

import pytest

from repro.io.jsonl import (
    JsonlAppender,
    json_line,
    read_jsonl,
    truncate_to_consistent,
)


class TestAppender:
    def test_appends_whole_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JsonlAppender(path) as appender:
            appender.append({"a": 1})
            appender.append({"b": 2}, {"c": 3})
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert entries == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_append_after_close_is_an_error(self, tmp_path):
        appender = JsonlAppender(tmp_path / "j.jsonl")
        appender.close()
        with pytest.raises(ValueError, match="closed"):
            appender.append({"a": 1})

    def test_empty_append_is_noop(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JsonlAppender(path) as appender:
            appender.append()
        assert path.read_text() == ""

    def test_floats_round_trip_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        value = 0.1 + 0.2  # not representable prettily
        with JsonlAppender(path) as appender:
            appender.append({"v": value})
        assert read_jsonl(path).entries[0]["v"] == value


class TestTolerantRead:
    def test_clean_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json_line({"a": 1}) + "\n" + json_line({"b": 2}) + "\n")
        document = read_jsonl(path)
        assert not document.torn
        assert len(document) == 2

    def test_torn_trailing_line_is_reported_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json_line({"a": 1}) + "\n" + '{"b": 2, "tor')
        document = read_jsonl(path)
        assert document.torn
        assert document.entries == [{"a": 1}]
        assert document.torn_line.startswith('{"b"')

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json_line({"a": 1}) + "\n\n" + json_line({"b": 2}) + "\n")
        assert len(read_jsonl(path)) == 2


class TestTruncateToConsistent:
    def test_repairs_torn_file_in_place(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json_line({"a": 1}) + "\n" + '{"torn')
        document = truncate_to_consistent(path)
        assert document.entries == [{"a": 1}]
        assert path.read_text() == json_line({"a": 1}) + "\n"
        assert not read_jsonl(path).torn

    def test_clean_file_is_untouched(self, tmp_path):
        path = tmp_path / "j.jsonl"
        text = json_line({"a": 1}) + "\n"
        path.write_text(text)
        truncate_to_consistent(path)
        assert path.read_text() == text
