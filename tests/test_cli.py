"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.benchmark == "Web-med"
        assert args.cooling == "Var"
        assert args.layers == 2

    def test_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "FIFO"])

    def test_registry_keys_and_aliases_are_choices(self):
        args = build_parser().parse_args([
            "simulate", "--policy", "rr", "--controller", "pid",
        ])
        assert args.policy == "rr"
        assert args.controller == "pid"


class TestListCommand:
    def test_list_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "-- policies --" in out
        assert "-- controllers --" in out
        assert "-- forecasters --" in out

    def test_list_policies(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        for key in ("LB", "Mig", "TALB", "RR"):
            assert key in out
        assert "uses_thermal_weights" in out  # TALB's trait.
        assert "controllers" not in out

    def test_list_controllers_shows_param_schemas(self, capsys):
        assert main(["list", "controllers"]) == 0
        out = capsys.readouterr().out
        for key in ("lut", "stepwise", "pid"):
            assert key in out
        assert "kp: float = 1.5" in out
        assert "needs_flow_table" in out

    def test_list_rejects_unknown_role(self):
        with pytest.raises(SystemExit):
            main(["list", "gizmos"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Web-high" in out
        assert "gzip" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "1041.667" in out  # Max per-cavity flow, 2-layer.
        assert "21.000" in out    # Max pump power.

    def test_simulate_with_export(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        csv_path = tmp_path / "run.csv"
        code = main(
            [
                "simulate",
                "--benchmark", "gzip",
                "--policy", "LB",
                "--cooling", "Max",
                "--duration", "2.0",
                "--save-json", str(json_path),
                "--save-csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak_temperature_sensor" in out
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["intervals"] == 20
        assert csv_path.read_text().startswith("time_s,")

    def test_simulate_registry_components_with_params(self, capsys):
        code = main(
            [
                "simulate",
                "--benchmark", "gzip",
                "--policy", "round-robin",
                "--controller", "pid",
                "--controller-param", "kp=2.0",
                "--controller-param", "margin=2",
                "--duration", "2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RR (Var)" in out
        assert "pump_energy_j" in out

    def test_simulate_forecaster_params(self, capsys):
        code = main(
            [
                "simulate",
                "--benchmark", "gzip",
                "--forecaster", "arma",
                "--forecaster-param", "window=100",
                "--duration", "2.0",
            ]
        )
        assert code == 0
        assert "peak_temperature_sensor" in capsys.readouterr().out

    def test_simulate_bad_param_is_clear_error(self):
        with pytest.raises(SystemExit, match="no parameter"):
            main([
                "simulate", "--controller", "pid",
                "--controller-param", "bogus=1", "--duration", "1.0",
            ])
        with pytest.raises(SystemExit, match="NAME=VALUE"):
            main([
                "simulate", "--controller", "pid",
                "--controller-param", "kp", "--duration", "1.0",
            ])

    def test_simulate_stepwise_controller(self, capsys):
        code = main(
            [
                "simulate",
                "--benchmark", "gzip",
                "--cooling", "Var",
                "--controller", "stepwise",
                "--duration", "2.0",
            ]
        )
        assert code == 0
        assert "pump_energy_j" in capsys.readouterr().out

    def test_simulate_trace_replay(self, tmp_path, capsys):
        """An mpstat-style CSV drives the run; its length wins over
        --duration."""
        trace_path = tmp_path / "load.csv"
        lines = ["second,utilization_pct"]
        lines += [f"{s},40.0" for s in range(3)]
        trace_path.write_text("\n".join(lines) + "\n")
        code = main(
            [
                "simulate",
                "--benchmark", "Web-med",
                "--cooling", "Max",
                "--policy", "LB",
                "--duration", "99.0",
                "--trace-csv", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "intervals                 : 30" in out  # 3 s, not 99 s.


class TestBatchCommand:
    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.workloads == "all"
        assert args.policies == "TALB"
        assert args.cooling == "Var"
        assert args.workers == 1

    def test_batch_runs_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "batch.json"
        csv_path = tmp_path / "batch.csv"
        code = main(
            [
                "batch",
                "--workloads", "gzip,MPlayer",
                "--policies", "LB",
                "--cooling", "Air,Max",
                "--duration", "2.0",
                "--save-json", str(json_path),
                "--save-csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 4 runs" in out
        assert "LB (Air)" in out and "LB (Max)" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_runs"] == 4
        assert csv_path.read_text().startswith("run,benchmark,")

    def test_batch_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["batch", "--workloads", "NotABenchmark", "--duration", "1.0"])

    def test_batch_reseed(self, capsys):
        code = main(
            [
                "batch",
                "--workloads", "gzip",
                "--policies", "LB",
                "--cooling", "Air",
                "--duration", "2.0",
                "--reseed", "40",
            ]
        )
        assert code == 0
        assert "batch: 1 runs" in capsys.readouterr().out


class TestSweepCommand:
    @staticmethod
    def _spec_file(tmp_path, duration=1.0):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "clitest",
            "base": {"duration": duration},
            "grid": {"benchmark": ["gzip", "MPlayer"], "cooling": ["Var", "Max"]},
        }))
        return str(path)

    def test_sweep_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_run_with_spec_file_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main([
            "sweep", "run",
            "--spec", self._spec_file(tmp_path),
            "--save-json", str(json_path),
            "--save-csv", str(csv_path),
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "clitest: 4 runs" in out
        assert "sweep: 4/4 folded" in out
        assert "scalar aggregates" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_runs"] == 4
        assert len(payload["rows"]) == 4
        assert "scalar" in payload["aggregates"]
        assert csv_path.read_text().startswith("run,key,")

    def test_run_builtin_spec_name(self, capsys):
        # One folded run of the headline declaration keeps this cheap.
        code = main([
            "sweep", "run",
            "--spec", "headline",
            "--duration", "1.0",
            "--stop-after", "1",
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "headline: 16 runs" in out
        assert "sweep incomplete" in out

    def test_interrupt_resume_status_round_trip(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        ck = tmp_path / "ck.jsonl"
        code = main([
            "sweep", "run", "--spec", spec,
            "--checkpoint", str(ck), "--stop-after", "2", "--quiet",
        ])
        assert code == 0
        assert "sweep incomplete (2 runs left)" in capsys.readouterr().out

        code = main(["sweep", "status", "--checkpoint", str(ck)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2/4 runs (50.0%)" in out

        code = main([
            "sweep", "resume", "--spec", spec,
            "--checkpoint", str(ck), "--quiet",
        ])
        assert code == 0
        assert "2 restored from checkpoint, 2 run now" in capsys.readouterr().out

    def test_unknown_spec_is_clear_error(self):
        with pytest.raises(SystemExit, match="neither a built-in name"):
            main(["sweep", "run", "--spec", "not-a-spec"])

    def test_status_missing_checkpoint_is_clear_error(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["sweep", "status", "--checkpoint", str(tmp_path / "no.jsonl")])

    def test_malformed_spec_file_is_clear_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["sweep", "run", "--spec", str(path)])

    def test_unknown_spec_field_is_clear_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"grid": {"bogus_field": [1]}}))
        with pytest.raises(SystemExit, match="bad sweep spec"):
            main(["sweep", "run", "--spec", str(path)])

    def test_bad_builtin_duration_is_clear_error(self):
        with pytest.raises(SystemExit, match="bad sweep spec"):
            main(["sweep", "run", "--spec", "headline", "--duration", "-1"])

    def test_stop_after_without_checkpoint_warns(self, tmp_path, capsys):
        code = main([
            "sweep", "run", "--spec", self._spec_file(tmp_path),
            "--stop-after", "1", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "progress is NOT saved" in out
        assert "resume" not in out  # No unusable resume hint.

    def test_resume_with_missing_checkpoint_is_clear_error(self, tmp_path):
        # A typo'd path must error, not silently restart from scratch.
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "sweep", "resume", "--spec", self._spec_file(tmp_path),
                "--checkpoint", str(tmp_path / "typo.jsonl"),
            ])

    def test_duration_rejected_for_spec_files(self, tmp_path):
        with pytest.raises(SystemExit, match="built-in specs only"):
            main([
                "sweep", "run",
                "--spec", self._spec_file(tmp_path),
                "--duration", "5.0",
            ])


class TestMissingOutputDirectoryErrors:
    """A typo'd output path fails fast with a message, not a traceback."""

    def test_batch_save_csv(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "batch", "--workloads", "gzip", "--policies", "LB",
                "--cooling", "Air", "--duration", "1.0",
                "--save-csv", str(tmp_path / "missing" / "out.csv"),
            ])

    def test_batch_save_json(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "batch", "--workloads", "gzip", "--policies", "LB",
                "--cooling", "Air", "--duration", "1.0",
                "--save-json", str(tmp_path / "missing" / "out.json"),
            ])

    def test_sweep_save_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "base": {"duration": 1.0}, "grid": {"benchmark": ["gzip"]},
        }))
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "sweep", "run", "--spec", str(path), "--quiet",
                "--save-json", str(tmp_path / "missing" / "out.json"),
            ])

    def test_sweep_checkpoint_parent(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "base": {"duration": 1.0}, "grid": {"benchmark": ["gzip"]},
        }))
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "sweep", "run", "--spec", str(path), "--quiet",
                "--checkpoint", str(tmp_path / "missing" / "ck.jsonl"),
            ])

    def test_simulate_save_json(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main([
                "simulate", "--duration", "1.0",
                "--save-json", str(tmp_path / "missing" / "out.json"),
            ])
