"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.benchmark == "Web-med"
        assert args.cooling == "Var"
        assert args.layers == 2

    def test_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "FIFO"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Web-high" in out
        assert "gzip" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "1041.667" in out  # Max per-cavity flow, 2-layer.
        assert "21.000" in out    # Max pump power.

    def test_simulate_with_export(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        csv_path = tmp_path / "run.csv"
        code = main(
            [
                "simulate",
                "--benchmark", "gzip",
                "--policy", "LB",
                "--cooling", "Max",
                "--duration", "2.0",
                "--save-json", str(json_path),
                "--save-csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak_temperature_sensor" in out
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["intervals"] == 20
        assert csv_path.read_text().startswith("time_s,")

    def test_simulate_stepwise_controller(self, capsys):
        code = main(
            [
                "simulate",
                "--benchmark", "gzip",
                "--cooling", "Var",
                "--controller", "stepwise",
                "--duration", "2.0",
            ]
        )
        assert code == 0
        assert "pump_energy_j" in capsys.readouterr().out

    def test_simulate_trace_replay(self, tmp_path, capsys):
        """An mpstat-style CSV drives the run; its length wins over
        --duration."""
        trace_path = tmp_path / "load.csv"
        lines = ["second,utilization_pct"]
        lines += [f"{s},40.0" for s in range(3)]
        trace_path.write_text("\n".join(lines) + "\n")
        code = main(
            [
                "simulate",
                "--benchmark", "Web-med",
                "--cooling", "Max",
                "--policy", "LB",
                "--duration", "99.0",
                "--trace-csv", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "intervals                 : 30" in out  # 3 s, not 99 s.


class TestBatchCommand:
    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.workloads == "all"
        assert args.policies == "TALB"
        assert args.cooling == "Var"
        assert args.workers == 1

    def test_batch_runs_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "batch.json"
        csv_path = tmp_path / "batch.csv"
        code = main(
            [
                "batch",
                "--workloads", "gzip,MPlayer",
                "--policies", "LB",
                "--cooling", "Air,Max",
                "--duration", "2.0",
                "--save-json", str(json_path),
                "--save-csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: 4 runs" in out
        assert "LB (Air)" in out and "LB (Max)" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_runs"] == 4
        assert csv_path.read_text().startswith("run,benchmark,")

    def test_batch_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["batch", "--workloads", "NotABenchmark", "--duration", "1.0"])

    def test_batch_reseed(self, capsys):
        code = main(
            [
                "batch",
                "--workloads", "gzip",
                "--policies", "LB",
                "--cooling", "Air",
                "--duration", "2.0",
                "--reseed", "40",
            ]
        )
        assert code == 0
        assert "batch: 1 runs" in capsys.readouterr().out
