"""The workload-model registry: keys, byte-identity, the new models."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.registry import WorkloadContext, workload_registry
from repro.sim.cache import CharacterizationCache
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.workload import SAMPLE_TRACE_PATH, WorkloadModel
from repro.workload.benchmarks import benchmark
from repro.workload.generator import WorkloadGenerator


def ctx_for(benchmark_name="Web-med", duration=5.0, seed=0, n_cores=8):
    return WorkloadContext(
        spec=benchmark(benchmark_name),
        n_cores=n_cores,
        duration=duration,
        seed=seed,
    )


def build(key, params=None, **ctx_kwargs):
    ctx = ctx_for(**ctx_kwargs)
    model = workload_registry().create(key, params, ctx)
    assert isinstance(model, WorkloadModel)
    return model.build_trace(ctx)


class TestRegistry:
    def test_builtin_keys_registered(self):
        keys = set(workload_registry().keys())
        assert {"table2", "trace-replay", "diurnal", "flash-crowd"} <= keys

    def test_aliases_normalize(self):
        registry = workload_registry()
        assert registry.normalize("synthetic") == "table2"
        assert registry.normalize("replay") == "trace-replay"
        assert registry.normalize("TABLE2") == "table2"

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            workload_registry().normalize("no-such-model")

    def test_param_schema_validated(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            SimulationConfig(workload="diurnal",
                             workload_params={"burst_rate": 0.2})
        with pytest.raises(ConfigurationError):
            SimulationConfig(workload="flash-crowd",
                             workload_params={"burst_utilization": 1.5})

    def test_no_workload_isinstance_outside_workload_package(self):
        """The acceptance rule: nothing outside repro.workload may
        special-case a workload model by type or key."""
        import pathlib
        import repro

        root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in root.rglob("*.py"):
            rel = path.relative_to(root)
            if rel.parts[0] == "workload":
                continue
            text = path.read_text()
            for marker in ("_Table2Model", "_TraceReplayModel",
                           "_DiurnalModel", "_FlashCrowdModel"):
                if marker in text:
                    offenders.append((str(rel), marker))
        assert offenders == []


class TestTable2ByteIdentity:
    def test_registry_trace_equals_direct_generator(self):
        for name in ("Web-med", "gzip", "Database"):
            direct = WorkloadGenerator(
                benchmark(name), n_cores=8, seed=3
            ).generate(5.0)
            via_registry = build(
                "table2", benchmark_name=name, duration=5.0, seed=3
            )
            assert via_registry == direct

    def test_engine_default_trace_unchanged(self):
        """A default config's simulator consumes exactly the trace the
        pre-registry engine hard-coded."""
        config = SimulationConfig(duration=2.0, seed=1)
        sim = Simulator(config, cache=CharacterizationCache())
        direct = WorkloadGenerator(
            config.spec, n_cores=config.n_cores, seed=config.seed
        ).generate(config.duration)
        assert sim.trace == direct

    def test_rate_params_change_trace(self):
        default = build("table2", duration=5.0)
        jittery = build("table2", {"rate_jitter": 0.6}, duration=5.0)
        assert default != jittery


class TestTraceReplay:
    def _write_csv(self, path, utils):
        lines = ["second,utilization_pct"]
        lines += [f"{i},{u:.1f}" for i, u in enumerate(utils)]
        path.write_text("\n".join(lines) + "\n")

    def test_bundled_sample_used_when_no_path(self):
        assert SAMPLE_TRACE_PATH.is_file()
        trace = build("trace-replay", duration=5.0)
        assert trace.duration == 5.0
        assert len(trace.threads) > 0

    def test_replays_recorded_profile(self, tmp_path):
        path = tmp_path / "t.csv"
        self._write_csv(path, [80.0] * 6)
        trace = build("trace-replay", {"path": str(path)}, duration=6.0)
        assert 0.5 < trace.offered_utilization() < 1.1

    def test_missing_file_is_a_workload_error(self):
        with pytest.raises(WorkloadError, match="does not exist"):
            build("trace-replay", {"path": "/nonexistent/trace.csv"},
                  duration=2.0)

    def test_short_trace_without_loop_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        self._write_csv(path, [50.0, 50.0])
        with pytest.raises(WorkloadError, match="loop=true"):
            build("trace-replay", {"path": str(path)}, duration=6.0)

    def test_loop_tiles_the_trace(self, tmp_path):
        path = tmp_path / "short.csv"
        self._write_csv(path, [90.0, 10.0])
        trace = build(
            "trace-replay", {"path": str(path), "loop": True}, duration=6.0
        )
        assert trace.duration == 6.0
        assert len(trace.threads) > 0

    def test_jsonl_trace_replays(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rows = [{"second": i, "utilization_pct": 60.0} for i in range(5)]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        trace = build("trace-replay", {"path": str(path)}, duration=5.0)
        assert len(trace.threads) > 0

    def test_deterministic(self, tmp_path):
        path = tmp_path / "t.csv"
        self._write_csv(path, [70.0] * 5)
        a = build("trace-replay", {"path": str(path)}, duration=5.0, seed=2)
        b = build("trace-replay", {"path": str(path)}, duration=5.0, seed=2)
        assert a == b


class TestDiurnal:
    def test_peak_regions_load_heavier_than_trough_region(self):
        # One sine cycle over 20 s starting at the peak: the outer
        # quarters ([0,5) and [15,20)) sit above mid-swing, the middle
        # half sits below it.
        trace = build(
            "diurnal",
            {"peak_utilization": 0.9, "trough_utilization": 0.05},
            duration=20.0,
        )
        peak = sum(t.length for t in trace.threads
                   if t.arrival < 5.0 or t.arrival >= 15.0)
        trough = sum(t.length for t in trace.threads
                     if 5.0 <= t.arrival < 15.0)
        assert peak > 2.0 * trough

    def test_phase_shifts_the_cycle(self):
        peak_first = build("diurnal", duration=20.0)
        trough_first = build("diurnal", {"phase": 0.5}, duration=20.0)
        def first_quarter_demand(trace):
            return sum(t.length for t in trace.threads if t.arrival < 5.0)
        assert first_quarter_demand(peak_first) > \
            2.0 * first_quarter_demand(trough_first)

    def test_square_shape_and_period(self):
        trace = build(
            "diurnal",
            {"shape": "square", "period": 10.0,
             "peak_utilization": 0.8, "trough_utilization": 0.0},
            duration=20.0,
        )
        # Two cycles: demand concentrates in [0,5) and [10,15).
        on = sum(t.length for t in trace.threads
                 if t.arrival % 10.0 < 5.0)
        off = sum(t.length for t in trace.threads
                  if t.arrival % 10.0 >= 5.0)
        assert on > 5.0 * max(off, 1.0e-9)

    def test_invalid_shape_and_inverted_band_rejected(self):
        with pytest.raises(WorkloadError, match="shape"):
            build("diurnal", {"shape": "triangle"}, duration=4.0)
        with pytest.raises(WorkloadError, match="trough"):
            build(
                "diurnal",
                {"peak_utilization": 0.2, "trough_utilization": 0.6},
                duration=4.0,
            )


class TestFlashCrowd:
    def test_bursts_raise_offered_load_above_baseline(self):
        calm = build("flash-crowd", {"burst_rate": 0.0}, duration=20.0)
        crowded = build("flash-crowd", {"burst_rate": 0.3}, duration=20.0)
        assert crowded.offered_utilization() > calm.offered_utilization()

    def test_zero_rate_matches_baseline_profile(self):
        trace = build(
            "flash-crowd",
            {"burst_rate": 0.0, "base_utilization": 0.4},
            duration=10.0,
        )
        assert abs(trace.offered_utilization() - 0.4) < 0.15

    def test_deterministic_per_seed(self):
        a = build("flash-crowd", duration=10.0, seed=5)
        b = build("flash-crowd", duration=10.0, seed=5)
        c = build("flash-crowd", duration=10.0, seed=6)
        assert a == b
        assert a != c


class TestEngineIntegration:
    def test_all_models_run_through_the_engine(self):
        for key, params in (
            ("table2", {}),
            ("trace-replay", {}),
            ("diurnal", {}),
            ("flash-crowd", {"burst_rate": 0.2}),
        ):
            config = SimulationConfig(
                duration=2.0, workload=key, workload_params=params
            )
            result = Simulator(config, cache=CharacterizationCache()).run()
            assert np.all(np.isfinite(result.tmax))

    def test_cached_trace_reruns_identically(self):
        """cache_trace models hand every run a pristine copy — a second
        simulation of the same config is bit-identical to the first."""
        cache = CharacterizationCache()
        config = SimulationConfig(duration=2.0, workload="trace-replay")
        first = Simulator(config, cache=cache).run()
        second = Simulator(config, cache=cache).run()
        assert cache.stats()["traces"] == 1
        assert np.array_equal(first.tmax, second.tmax)
        assert first.total_energy() == second.total_energy()

    def test_warm_prebuilds_cache_trace_entries(self):
        cache = CharacterizationCache()
        configs = [
            SimulationConfig(duration=2.0, workload="trace-replay"),
            SimulationConfig(duration=2.0, workload="diurnal"),
            SimulationConfig(duration=2.0),
        ]
        cache.warm(configs)
        # Only the cache_trace-trait model (trace-replay) is stored.
        assert cache.stats()["traces"] == 1

    def test_cache_merge_and_clear_cover_traces(self):
        a, b = CharacterizationCache(), CharacterizationCache()
        config = SimulationConfig(duration=2.0, workload="trace-replay")
        b.thread_trace(config)
        a.merge(b)
        assert a.stats()["traces"] == 1
        a.clear()
        assert len(a) == 0

    def test_explicit_trace_argument_still_wins(self):
        config = SimulationConfig(duration=2.0)
        trace = WorkloadGenerator(
            config.spec, n_cores=config.n_cores, seed=9
        ).generate(config.duration)
        sim = Simulator(config, trace=trace, cache=CharacterizationCache())
        assert sim.trace is trace
