"""Thread execution accounting."""

import pytest

from repro.errors import WorkloadError
from repro.workload.threads import Thread


class TestThread:
    def test_execute_consumes_remaining(self):
        t = Thread(0, arrival=0.0, length=0.05)
        used = t.execute(0.01)
        assert used == pytest.approx(0.01)
        assert t.remaining == pytest.approx(0.04)
        assert not t.done

    def test_execute_caps_at_remaining(self):
        t = Thread(0, arrival=0.0, length=0.005)
        used = t.execute(0.01)
        assert used == pytest.approx(0.005)
        assert t.done

    def test_done_tolerance(self):
        t = Thread(0, arrival=0.0, length=0.01)
        t.execute(0.01)
        assert t.done

    def test_rejects_negative_quantum(self):
        t = Thread(0, arrival=0.0, length=0.01)
        with pytest.raises(WorkloadError):
            t.execute(-0.01)

    def test_rejects_bad_length(self):
        with pytest.raises(WorkloadError):
            Thread(0, arrival=0.0, length=0.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(WorkloadError):
            Thread(0, arrival=-1.0, length=0.01)

    def test_remaining_defaults_to_length(self):
        t = Thread(0, arrival=1.0, length=0.25)
        assert t.remaining == pytest.approx(0.25)

    def test_migrations_counter(self):
        t = Thread(0, arrival=0.0, length=0.1)
        assert t.migrations == 0
