"""Table II benchmark descriptors."""

import pytest

from repro.errors import WorkloadError
from repro.workload.benchmarks import TABLE_II, BenchmarkSpec, benchmark


class TestTableIIValues:
    def test_eight_benchmarks(self):
        assert len(TABLE_II) == 8

    @pytest.mark.parametrize(
        "name,util,i_miss,d_miss,fp",
        [
            ("Web-med", 53.12, 12.9, 167.7, 31.2),
            ("Web-high", 92.87, 67.6, 288.7, 31.2),
            ("Database", 17.75, 6.5, 102.3, 5.9),
            ("Web&DB", 75.12, 21.5, 115.3, 24.1),
            ("gcc", 15.25, 31.7, 96.2, 18.1),
            ("gzip", 9.0, 2.0, 57.0, 0.2),
            ("MPlayer", 6.5, 9.6, 136.0, 1.0),
            ("MPlayer&Web", 26.62, 9.1, 66.8, 29.9),
        ],
    )
    def test_row(self, name, util, i_miss, d_miss, fp):
        spec = TABLE_II[name]
        assert spec.avg_utilization == util
        assert spec.l2_i_miss == i_miss
        assert spec.l2_d_miss == d_miss
        assert spec.fp_instructions == fp

    def test_indices_match_table_order(self):
        assert [s.index for s in TABLE_II.values()] == list(range(1, 9))

    def test_utilization_fraction(self):
        assert TABLE_II["Web-high"].utilization == pytest.approx(0.9287)


class TestMemoryIntensity:
    def test_web_high_is_most_intensive(self):
        assert TABLE_II["Web-high"].memory_intensity == pytest.approx(1.0)

    def test_all_in_unit_interval(self):
        for spec in TABLE_II.values():
            assert 0.0 < spec.memory_intensity <= 1.0

    def test_gzip_least_intensive(self):
        lows = min(TABLE_II.values(), key=lambda s: s.memory_intensity)
        assert lows.name == "gzip"


class TestLookup:
    def test_case_insensitive(self):
        assert benchmark("web-HIGH") is TABLE_II["Web-high"]

    def test_unknown_raises_with_choices(self):
        with pytest.raises(WorkloadError, match="available"):
            benchmark("SPECint")


class TestValidation:
    def test_rejects_bad_utilization(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec(9, "bad", 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(WorkloadError):
            BenchmarkSpec(9, "bad", 120.0, 1.0, 1.0, 1.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec(9, "bad", 50.0, -1.0, 1.0, 1.0)
