"""mpstat-style utilization traces and trace-driven generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.benchmarks import benchmark
from repro.workload.generator import WorkloadGenerator
from repro.workload.traces import UtilizationTrace, generate_from_utilization


class TestUtilizationTrace:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            UtilizationTrace(np.array([]), n_cores=8)
        with pytest.raises(WorkloadError):
            UtilizationTrace(np.array([0.5, 1.2]), n_cores=8)
        with pytest.raises(WorkloadError):
            UtilizationTrace(np.array([0.5]), n_cores=0)

    def test_duration_and_mean(self):
        trace = UtilizationTrace(np.array([0.2, 0.4, 0.6]), n_cores=8)
        assert trace.duration == 3.0
        assert trace.mean_utilization() == pytest.approx(0.4)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        original = UtilizationTrace(
            np.array([0.1, 0.55, 0.93]), n_cores=8, name="web"
        )
        path = tmp_path / "trace.csv"
        original.to_csv(path)
        loaded = UtilizationTrace.from_csv(path, n_cores=8)
        assert np.allclose(loaded.utilization, original.utilization, atol=1e-4)
        assert loaded.name == "trace"

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("second,utilization_pct\n0\n")
        with pytest.raises(WorkloadError, match="2 columns"):
            UtilizationTrace.from_csv(path, n_cores=8)

    def test_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("second,utilization_pct\n0,high\n")
        with pytest.raises(WorkloadError):
            UtilizationTrace.from_csv(path, n_cores=8)


class TestFromThreadTrace:
    def test_recorded_mean_matches_offered(self):
        spec = benchmark("Web-med")
        threads = WorkloadGenerator(spec, seed=0).generate(60.0)
        recorded = UtilizationTrace.from_thread_trace(threads)
        assert recorded.mean_utilization() == pytest.approx(
            threads.offered_utilization(), rel=0.05
        )

    def test_thread_spanning_slots_is_split(self):
        from repro.workload.generator import ThreadTrace
        from repro.workload.threads import Thread

        spec = benchmark("gzip")
        # One 0.8 s thread arriving at t=0.9 spans slots 0 and 1.
        trace = ThreadTrace(
            threads=(Thread(0, arrival=0.9, length=0.8),),
            duration=2.0,
            spec=spec,
            n_cores=1,
        )
        recorded = UtilizationTrace.from_thread_trace(trace)
        assert recorded.utilization[0] == pytest.approx(0.1)
        assert recorded.utilization[1] == pytest.approx(0.7)


class TestGenerateFromUtilization:
    def test_follows_the_profile(self):
        spec = benchmark("Web-med")
        profile = UtilizationTrace(
            np.concatenate([np.full(30, 0.8), np.full(30, 0.1)]),
            n_cores=8,
        )
        threads = generate_from_utilization(profile, spec, seed=1)
        recorded = UtilizationTrace.from_thread_trace(threads)
        busy = recorded.utilization[:30].mean()
        quiet = recorded.utilization[30:].mean()
        assert busy > 4 * quiet
        assert busy == pytest.approx(0.8, rel=0.25)

    def test_deterministic(self):
        spec = benchmark("gzip")
        profile = UtilizationTrace(np.full(20, 0.3), n_cores=8)
        a = generate_from_utilization(profile, spec, seed=3)
        b = generate_from_utilization(profile, spec, seed=3)
        assert [(t.arrival, t.length) for t in a.threads] == [
            (t.arrival, t.length) for t in b.threads
        ]

    def test_zero_utilization_generates_nothing(self):
        spec = benchmark("gzip")
        profile = UtilizationTrace(np.zeros(10), n_cores=8)
        threads = generate_from_utilization(profile, spec)
        assert len(threads.threads) == 0
