"""Synthetic workload generator vs Table II statistics."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.benchmarks import TABLE_II, benchmark
from repro.workload.generator import WorkloadGenerator, diurnal_trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        spec = benchmark("Web-med")
        a = WorkloadGenerator(spec, seed=7).generate(10.0)
        b = WorkloadGenerator(spec, seed=7).generate(10.0)
        assert [(t.arrival, t.length) for t in a.threads] == [
            (t.arrival, t.length) for t in b.threads
        ]

    def test_different_seed_differs(self):
        spec = benchmark("Web-med")
        a = WorkloadGenerator(spec, seed=1).generate(10.0)
        b = WorkloadGenerator(spec, seed=2).generate(10.0)
        assert [(t.arrival, t.length) for t in a.threads] != [
            (t.arrival, t.length) for t in b.threads
        ]


class TestTrace:
    def test_arrivals_sorted_and_in_range(self):
        trace = WorkloadGenerator(benchmark("Web-high"), seed=0).generate(20.0)
        arrivals = [t.arrival for t in trace.threads]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < 20.0 for a in arrivals)

    def test_thread_ids_unique(self):
        trace = WorkloadGenerator(benchmark("Web-high"), seed=0).generate(10.0)
        ids = [t.thread_id for t in trace.threads]
        assert len(set(ids)) == len(ids)

    def test_lengths_in_paper_regime(self):
        """'a few to several hundred milliseconds'."""
        trace = WorkloadGenerator(benchmark("Web-med"), seed=0).generate(30.0)
        lengths = np.array([t.length for t in trace.threads])
        assert lengths.min() >= 0.003
        assert lengths.max() <= 0.8
        assert 0.05 < np.median(lengths) < 0.2

    @pytest.mark.parametrize("name", list(TABLE_II))
    def test_offered_utilization_matches_table2(self, name):
        spec = benchmark(name)
        trace = WorkloadGenerator(spec, seed=3).generate(120.0)
        assert trace.offered_utilization() == pytest.approx(
            spec.utilization, rel=0.25
        )

    def test_sixteen_core_replication(self):
        """'The workload statistics ... are replicated for the
        4-layered 16-core system': offered per-core load is preserved."""
        spec = benchmark("Web-med")
        t8 = WorkloadGenerator(spec, n_cores=8, seed=0).generate(60.0)
        t16 = WorkloadGenerator(spec, n_cores=16, seed=0).generate(60.0)
        assert t16.offered_utilization() == pytest.approx(
            t8.offered_utilization(), rel=0.2
        )
        assert len(t16.threads) > 1.5 * len(t8.threads)

    def test_arrivals_between(self):
        trace = WorkloadGenerator(benchmark("Web-high"), seed=0).generate(10.0)
        window = trace.arrivals_between(2.0, 3.0)
        assert all(2.0 <= t.arrival < 3.0 for t in window)
        total = sum(
            len(trace.arrivals_between(i, i + 1.0)) for i in range(10)
        )
        assert total == len(trace.threads)


class TestValidation:
    def test_rejects_bad_duration(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(benchmark("gzip")).generate(0.0)

    def test_rejects_bad_cores(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(benchmark("gzip"), n_cores=0)

    def test_rejects_bad_correlation(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(benchmark("gzip"), rate_correlation=1.0)


class TestDiurnal:
    def test_two_phases(self):
        trace = diurnal_trace(
            benchmark("Web-high"), benchmark("gzip"), phase_duration=10.0, seed=0
        )
        assert trace.duration == pytest.approx(20.0)
        day = [t for t in trace.threads if t.arrival < 10.0]
        night = [t for t in trace.threads if t.arrival >= 10.0]
        # Day (Web-high) is much denser than night (gzip).
        assert len(day) > 3 * len(night)

    def test_rejects_bad_phase(self):
        with pytest.raises(WorkloadError):
            diurnal_trace(benchmark("gzip"), benchmark("gcc"), 0.0)
