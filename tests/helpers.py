"""Shared test fixtures and factories."""

from __future__ import annotations

import numpy as np

from repro.sim.results import SimulationResult


def make_result(
    tmax: np.ndarray,
    core_temperatures: np.ndarray | None = None,
    unit_temperatures: np.ndarray | None = None,
    chip_power: np.ndarray | None = None,
    pump_power: np.ndarray | None = None,
    completed: np.ndarray | None = None,
    interval: float = 0.1,
) -> SimulationResult:
    """Build a synthetic :class:`SimulationResult` for metric tests."""
    tmax = np.asarray(tmax, dtype=float)
    n = len(tmax)
    if core_temperatures is None:
        core_temperatures = np.tile(tmax[:, None], (1, 2))
    if unit_temperatures is None:
        unit_temperatures = np.tile(tmax[:, None], (1, 3))
    if chip_power is None:
        chip_power = np.full(n, 30.0)
    if pump_power is None:
        pump_power = np.zeros(n)
    if completed is None:
        completed = np.ones(n, dtype=int)
    return SimulationResult(
        times=np.arange(1, n + 1) * interval,
        tmax=tmax,
        tmax_cell=tmax + 0.5,
        core_temperatures=np.asarray(core_temperatures, dtype=float),
        unit_temperatures=np.asarray(unit_temperatures, dtype=float),
        unit_names=[f"0:u{i}" for i in range(np.asarray(unit_temperatures).shape[1])],
        core_names=[f"core{i}" for i in range(np.asarray(core_temperatures).shape[1])],
        chip_power=np.asarray(chip_power, dtype=float),
        pump_power=np.asarray(pump_power, dtype=float),
        flow_setting=np.full(n, -1, dtype=int),
        completed_threads=np.asarray(completed, dtype=int),
        forecast_tmax=np.full(n, np.nan),
        migrations=np.zeros(n, dtype=int),
    )
