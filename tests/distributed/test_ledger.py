"""Campaign planning: ledger format, shard fingerprints, idempotency."""

import json

import pytest

from repro.dist import plan_campaign, read_ledger, shard_fingerprint
from repro.dist.plan import ledger_spec, plan_shards
from repro.errors import ConfigurationError
from repro.io.dist import (
    LEASES_DIR,
    LEDGER_NAME,
    SHARDS_DIR,
    read_lease,
    reclaim_stale_lease,
    refresh_lease,
    release_lease,
    try_claim_lease,
)
from repro.sim.config import SimulationConfig
from repro.sweep import SweepSpec


def small_spec(name="dist-small", duration=1.0):
    return SweepSpec(
        base=SimulationConfig(duration=duration),
        grid={"benchmark_name": ["gzip", "Web-med"], "cooling": ["Var", "Max"]},
        name=name,
    )


class TestPlanShards:
    def test_tiles_the_run_range(self):
        shards = plan_shards("fp", 10, 4)
        assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 8), (8, 10)]
        assert [s.index for s in shards] == [0, 1, 2]

    def test_shard_ids_derive_from_spec_fingerprint(self):
        a = plan_shards("fp-a", 4, 2)
        b = plan_shards("fp-b", 4, 2)
        assert {s.shard_id for s in a}.isdisjoint({s.shard_id for s in b})
        assert a[0].shard_id == shard_fingerprint("fp-a", 0, 2)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            plan_shards("fp", 4, 0)


class TestPlanCampaign:
    def test_writes_ledger_and_directories(self, tmp_path):
        spec = small_spec()
        plan = plan_campaign(spec, tmp_path / "camp", chunk_size=3)
        assert plan.n_runs == 4
        assert plan.n_shards == 2
        assert (tmp_path / "camp" / LEDGER_NAME).is_file()
        assert (tmp_path / "camp" / SHARDS_DIR).is_dir()
        assert (tmp_path / "camp" / LEASES_DIR).is_dir()

    def test_ledger_embeds_spec_and_round_trips(self, tmp_path):
        spec = small_spec()
        plan_campaign(spec, tmp_path / "camp")
        ledger = read_ledger(tmp_path / "camp")
        rebuilt = ledger_spec(ledger)
        assert rebuilt.fingerprint() == spec.fingerprint()
        assert rebuilt.run_count == spec.run_count
        assert [p.key for p in rebuilt.iter_points()] == [
            p.key for p in spec.iter_points()
        ]

    def test_replan_same_campaign_is_noop(self, tmp_path):
        spec = small_spec()
        first = plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        again = plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        assert again.existing and not first.existing
        assert [s.shard_id for s in again.shards] == [
            s.shard_id for s in first.shards
        ]

    def test_replan_different_spec_is_refused(self, tmp_path):
        plan_campaign(small_spec(), tmp_path / "camp")
        other = SweepSpec(
            base=SimulationConfig(duration=1.0),
            grid={"benchmark_name": ["Database"]},
        )
        with pytest.raises(ConfigurationError, match="different campaign"):
            plan_campaign(other, tmp_path / "camp")

    def test_replan_different_chunking_is_refused(self, tmp_path):
        spec = small_spec()
        plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            plan_campaign(spec, tmp_path / "camp", chunk_size=3)

    def test_replan_different_aggregators_is_refused(self, tmp_path):
        """Workers journal fold payloads for the planned reducer set, so
        a re-plan cannot silently swap it."""
        from repro.sweep import ScalarAggregator

        spec = small_spec()
        plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        with pytest.raises(ConfigurationError, match="aggregator"):
            plan_campaign(
                spec, tmp_path / "camp", chunk_size=2,
                aggregators=[ScalarAggregator(group_by=("benchmark",))],
            )

    def test_corrupt_spec_payload_is_detected(self, tmp_path):
        plan_campaign(small_spec(), tmp_path / "camp")
        path = tmp_path / "camp" / LEDGER_NAME
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec"]["grid"]["benchmark_name"] = ["Database"]
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            ledger_spec(read_ledger(tmp_path / "camp"))

    def test_not_a_campaign_directory_is_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="dist plan"):
            read_ledger(tmp_path)


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        path = tmp_path / "s.json"
        first = try_claim_lease(path, "w1", ttl=60.0, now=1000.0)
        second = try_claim_lease(path, "w2", ttl=60.0, now=1000.0)
        assert first is not None and first.worker == "w1"
        assert second is None
        assert read_lease(path).worker == "w1"

    def test_release_allows_reclaim(self, tmp_path):
        path = tmp_path / "s.json"
        try_claim_lease(path, "w1", ttl=60.0)
        release_lease(path)
        assert try_claim_lease(path, "w2", ttl=60.0) is not None

    def test_fresh_lease_is_not_reclaimable(self, tmp_path):
        path = tmp_path / "s.json"
        try_claim_lease(path, "w1", ttl=60.0, now=1000.0)
        assert not reclaim_stale_lease(path, now=1030.0)
        assert read_lease(path).worker == "w1"

    def test_expired_lease_is_reclaimable(self, tmp_path):
        path = tmp_path / "s.json"
        try_claim_lease(path, "w1", ttl=60.0, now=1000.0)
        assert reclaim_stale_lease(path, now=1061.0)
        assert read_lease(path) is None
        assert try_claim_lease(path, "w2", ttl=60.0) is not None

    def test_torn_lease_counts_as_stale(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text('{"worker": "w1", "acqu')  # killed mid-claim
        assert reclaim_stale_lease(path, now=0.0)

    def test_refresh_extends_own_lease(self, tmp_path):
        path = tmp_path / "s.json"
        try_claim_lease(path, "w1", ttl=60.0, now=1000.0)
        assert refresh_lease(path, "w1", ttl=60.0, now=1050.0)
        assert read_lease(path).deadline == 1110.0

    def test_refresh_fails_after_reclaim_by_other_worker(self, tmp_path):
        path = tmp_path / "s.json"
        try_claim_lease(path, "w1", ttl=60.0, now=1000.0)
        assert reclaim_stale_lease(path, now=1061.0)
        try_claim_lease(path, "w2", ttl=60.0, now=1061.0)
        assert not refresh_lease(path, "w1", ttl=60.0, now=1062.0)
        assert read_lease(path).worker == "w2"

    def test_owner_checked_release_spares_reclaimed_lease(self, tmp_path):
        """A worker whose lease expired and was reclaimed must not
        delete the new owner's lease on its way out — that would expose
        the shard to a third claimer while it is being re-executed."""
        path = tmp_path / "s.json"
        try_claim_lease(path, "w1", ttl=60.0, now=1000.0)
        assert reclaim_stale_lease(path, now=1061.0)
        try_claim_lease(path, "w2", ttl=60.0, now=1061.0)
        release_lease(path, worker="w1")  # w1's cleanup after losing it
        assert read_lease(path).worker == "w2"
        release_lease(path, worker="w2")  # the owner's release works
        assert read_lease(path) is None
