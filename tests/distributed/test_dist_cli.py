"""The ``repro dist`` CLI, including the 2-worker end-to-end smoke.

``test_two_concurrent_workers_match_single_host`` is the gating CI
acceptance check: plan a tiny campaign, run two real worker processes
concurrently against the shared directory, merge, and require the
completion JSON and CSV to be byte-identical to ``repro sweep run`` on
one host.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main


def spec_file(tmp_path, duration=1.0):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "distcli",
        "base": {"duration": duration},
        "grid": {"benchmark": ["gzip", "MPlayer"], "cooling": ["Var", "Max"]},
    }))
    return str(path)


class TestPlanStatus:
    def test_plan_writes_ledger_and_reports(self, tmp_path, capsys):
        code = main([
            "dist", "plan", "--spec", spec_file(tmp_path),
            "--dir", str(tmp_path / "camp"), "--chunk-size", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 runs in 2 shard(s)" in out
        assert (tmp_path / "camp" / "ledger.jsonl").is_file()

    def test_plan_is_idempotent(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        camp = str(tmp_path / "camp")
        assert main(["dist", "plan", "--spec", spec, "--dir", camp]) == 0
        capsys.readouterr()
        assert main(["dist", "plan", "--spec", spec, "--dir", camp]) == 0
        assert "already planned" in capsys.readouterr().out

    def test_plan_builtin_spec_name(self, tmp_path, capsys):
        code = main([
            "dist", "plan", "--spec", "ablations", "--duration", "1.0",
            "--dir", str(tmp_path / "camp"), "--chunk-size", "2",
        ])
        assert code == 0
        assert "4 runs in 2 shard(s)" in capsys.readouterr().out

    def test_plan_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(SystemExit, match="chunk-size"):
            main([
                "dist", "plan", "--spec", spec_file(tmp_path),
                "--dir", str(tmp_path / "camp"), "--chunk-size", "0",
            ])

    def test_status_on_non_campaign_dir_is_clear_error(self, tmp_path):
        with pytest.raises(SystemExit, match="dist plan"):
            main(["dist", "status", "--dir", str(tmp_path)])

    def test_status_reports_progress(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        camp = str(tmp_path / "camp")
        main(["dist", "plan", "--spec", spec, "--dir", camp,
              "--chunk-size", "1"])
        main(["dist", "work", "--dir", camp, "--max-shards", "2", "--quiet"])
        capsys.readouterr()
        assert main(["dist", "status", "--dir", camp]) == 0
        out = capsys.readouterr().out
        assert "2/4 done" in out
        assert "2/4 journaled-complete" in out


class TestWorkMerge:
    def test_single_worker_and_merge_exports(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        camp = str(tmp_path / "camp")
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        main(["dist", "plan", "--spec", spec, "--dir", camp,
              "--chunk-size", "3"])
        assert main(["dist", "work", "--dir", camp, "--quiet"]) == 0
        capsys.readouterr()
        code = main([
            "dist", "merge", "--dir", camp,
            "--save-json", str(json_path), "--save-csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "merge: 4/4 runs from 2 shard(s)" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_runs"] == 4
        assert set(payload["aggregates"]) == {
            "scalar", "cells", "histogram", "quantile", "moments",
            "histogram_5",
        }
        assert csv_path.read_text().startswith("run,key,")

    def test_merge_incomplete_campaign_is_clear_error(self, tmp_path):
        spec = spec_file(tmp_path)
        camp = str(tmp_path / "camp")
        main(["dist", "plan", "--spec", spec, "--dir", camp,
              "--chunk-size", "1"])
        main(["dist", "work", "--dir", camp, "--max-shards", "1", "--quiet"])
        with pytest.raises(SystemExit, match="incomplete"):
            main(["dist", "merge", "--dir", camp])

    def test_merge_partial_folds_prefix(self, tmp_path, capsys):
        spec = spec_file(tmp_path)
        camp = str(tmp_path / "camp")
        main(["dist", "plan", "--spec", spec, "--dir", camp,
              "--chunk-size", "1"])
        main(["dist", "work", "--dir", camp, "--max-shards", "2", "--quiet"])
        capsys.readouterr()
        assert main(["dist", "merge", "--dir", camp, "--partial"]) == 0
        assert "merge: 2/4 runs" in capsys.readouterr().out


class TestTwoWorkerSmoke:
    def test_two_concurrent_workers_match_single_host(self, tmp_path, capsys):
        """Plan -> two real worker processes -> merge == sweep run."""
        spec = spec_file(tmp_path)
        camp = str(tmp_path / "camp")
        assert main([
            "dist", "plan", "--spec", spec, "--dir", camp, "--chunk-size", "1",
        ]) == 0

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "dist", "work",
                    "--dir", camp, "--worker-id", f"smoke-w{i}",
                    "--lease-ttl", "120", "--poll-interval", "0.1", "--quiet",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for i in (1, 2)
        ]
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=300)
            assert worker.returncode == 0, stderr
            assert "executed" in stdout

        dist_json = tmp_path / "dist.json"
        dist_csv = tmp_path / "dist.csv"
        assert main([
            "dist", "merge", "--dir", camp,
            "--save-json", str(dist_json), "--save-csv", str(dist_csv),
        ]) == 0

        ref_json = tmp_path / "ref.json"
        ref_csv = tmp_path / "ref.csv"
        assert main([
            "sweep", "run", "--spec", spec, "--quiet",
            "--save-json", str(ref_json), "--save-csv", str(ref_csv),
        ]) == 0

        assert dist_json.read_bytes() == ref_json.read_bytes()
        assert dist_csv.read_bytes() == ref_csv.read_bytes()
