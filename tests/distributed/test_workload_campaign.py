"""Workload-axis campaigns through the dist pipeline.

Satellite acceptance: a sweep over workload-model keys and dotted
``workload_params`` axes survives the ledger round-trip and merges
byte-identical to a single-host run — including when two concurrent
workers race over the shared campaign directory.
"""

import json
import threading

import pytest

from repro.dist import merge_campaign, plan_campaign, read_ledger, run_worker
from repro.dist.plan import ledger_spec
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec


def workload_spec(name="workload-campaign"):
    """A spec sweeping the workload axis itself plus a dotted param."""
    return SweepSpec(
        base=SimulationConfig(benchmark_name="Web-med", duration=1.0),
        points=[
            {"workload": "table2"},
            {"workload": "diurnal",
             "workload_params": {"shape": "square"}},
            {"workload": "flash-crowd",
             "workload_params": {"burst_rate": 0.3}},
        ],
        name=name,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    root = tmp_path_factory.mktemp("workload-ref")
    result = SweepRunner(workload_spec(), csv_path=root / "ref.csv").run()
    result.save_json(root / "ref.json")
    return {
        "rows": result.rows,
        "json": (root / "ref.json").read_bytes(),
        "csv": (root / "ref.csv").read_bytes(),
    }


class TestLedgerRoundTrip:
    def test_ledger_payload_reconstructs_the_exact_spec(self, tmp_path):
        spec = workload_spec()
        plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        ledger = read_ledger(tmp_path / "camp")
        clone = ledger_spec(ledger)  # Verifies fingerprint en route.
        assert clone.fingerprint() == spec.fingerprint()
        assert [p.config.workload for p in clone.iter_points()] == [
            "table2", "diurnal", "flash-crowd"
        ]
        assert [dict(p.config.workload_params) for p in clone.iter_points()] == [
            {}, {"shape": "square"}, {"burst_rate": 0.3}
        ]

    def test_ledger_spec_payload_is_json_lossless(self, tmp_path):
        plan_campaign(workload_spec(), tmp_path / "camp", chunk_size=2)
        raw = (tmp_path / "camp" / "ledger.jsonl").read_text().splitlines()[0]
        payload = json.loads(raw)["spec"]
        assert payload["points"][1]["workload"] == "diurnal"
        assert payload["points"][1]["workload_params"] == {"shape": "square"}


class TestShardedExecution:
    def test_single_worker_merge_byte_identical(self, tmp_path, reference):
        camp = tmp_path / "camp"
        plan_campaign(workload_spec(), camp, chunk_size=2)
        run_worker(camp, worker_id="w1")
        merged = merge_campaign(camp)
        assert merged.complete
        assert merged.rows == reference["rows"]
        merged.save_json(tmp_path / "dist.json")
        merged.save_csv(tmp_path / "dist.csv")
        assert (tmp_path / "dist.json").read_bytes() == reference["json"]
        assert (tmp_path / "dist.csv").read_bytes() == reference["csv"]

    def test_two_concurrent_workers_merge_byte_identical(
        self, tmp_path, reference
    ):
        """The pinning check for trace-building under concurrency: two
        workers race over one-run shards, and the merged exports must
        still equal the single-host bytes exactly."""
        camp = tmp_path / "camp"
        plan_campaign(workload_spec(), camp, chunk_size=1)
        threads = [
            threading.Thread(
                target=run_worker, args=(camp,),
                kwargs={"worker_id": f"w{i}"},
            )
            for i in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_campaign(camp)
        assert merged.complete
        assert merged.rows == reference["rows"]
        merged.save_json(tmp_path / "dist.json")
        merged.save_csv(tmp_path / "dist.csv")
        assert (tmp_path / "dist.json").read_bytes() == reference["json"]
        assert (tmp_path / "dist.csv").read_bytes() == reference["csv"]

    def test_rows_carry_workload_columns(self, reference):
        rows = reference["rows"]
        assert [row["workload"] for row in rows] == [
            "table2", "diurnal", "flash-crowd"
        ]
        assert rows[0]["workload_params"] == ""
        assert json.loads(rows[2]["workload_params"]) == {"burst_rate": 0.3}
