"""Cohorts inside distributed campaigns: a shard whose runs share one
thermal network executes as a cohort, and a worker killed mid-cohort is
reclaimed with a byte-identical merge — cohort execution is invisible
in the journals and in the merged outputs."""

import pytest

from repro.dist import (
    campaign_status,
    merge_campaign,
    plan_campaign,
    read_ledger,
    run_worker,
)
from repro.dist.plan import ledger_spec
from repro.dist.worker import _execute_shard
from repro.errors import ConfigurationError
from repro.io.dist import try_claim_lease
from repro.runner import group_cohorts
from repro.sim.cache import CharacterizationCache
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec, aggregator_from_spec


def cohort_spec(name="dist-cohort"):
    """Four runs over one thermal network — a single 4-member cohort."""
    return SweepSpec(
        base=SimulationConfig(duration=0.5, nx=12, ny=12),
        grid={"policy": ["TALB", "RR"], "seed": [0, 1]},
        name=name,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The single-host serial run every campaign must reproduce."""
    root = tmp_path_factory.mktemp("cohort-reference")
    result = SweepRunner(
        cohort_spec(), csv_path=root / "ref.csv", cohort="off"
    ).run()
    result.save_json(root / "ref.json")
    return {
        "rows": result.rows,
        "agg_rows": [a.rows() for a in result.aggregators],
        "json": (root / "ref.json").read_bytes(),
        "csv": (root / "ref.csv").read_bytes(),
    }


def _assert_matches_reference(tmp_path, campaign_dir, reference):
    merged = merge_campaign(campaign_dir)
    assert merged.complete
    assert merged.rows == reference["rows"]
    assert [a.rows() for a in merged.aggregators] == reference["agg_rows"]
    merged.save_json(tmp_path / "dist.json")
    merged.save_csv(tmp_path / "dist.csv")
    assert (tmp_path / "dist.json").read_bytes() == reference["json"]
    assert (tmp_path / "dist.csv").read_bytes() == reference["csv"]


class TestCohortingShard:
    def test_shard_forms_one_cohort(self):
        spec = cohort_spec()
        configs = [point.config for point in spec.iter_points()]
        assert [len(c) for c in group_cohorts(configs)] == [4]

    def test_whole_campaign_cohort_merges_byte_identical(
        self, tmp_path, reference
    ):
        """One shard = one 4-run cohort, merged vs serial per-run."""
        camp = tmp_path / "camp"
        plan_campaign(cohort_spec(), camp, chunk_size=4)
        run_worker(camp, worker_id="w1")
        _assert_matches_reference(tmp_path, camp, reference)

    def test_chunking_splits_cohorts_byte_identical(
        self, tmp_path, reference
    ):
        """chunk_size=3 slices the cohort across shard boundaries —
        a 3-run cohort plus a singleton — and the merge still matches."""
        camp = tmp_path / "camp"
        plan_campaign(cohort_spec(), camp, chunk_size=3)
        run_worker(camp, worker_id="w1")
        _assert_matches_reference(tmp_path, camp, reference)

    def test_cohort_off_worker_matches_too(self, tmp_path, reference):
        camp = tmp_path / "camp"
        plan_campaign(cohort_spec(), camp, chunk_size=4)
        run_worker(camp, worker_id="w1", cohort="off")
        _assert_matches_reference(tmp_path, camp, reference)


class TestKillMidCohort:
    def test_worker_killed_mid_cohort_is_reclaimed(self, tmp_path, reference):
        """The dead worker journaled part of a cohort's runs (plus a
        torn trailing line) before dying; the rescuer reclaims the
        stale lease, re-executes the whole shard — re-forming the
        cohort from scratch — and the merge is byte-identical."""
        camp = tmp_path / "camp"
        plan_campaign(cohort_spec(), camp, chunk_size=4)
        ledger = read_ledger(camp)
        victim = ledger.shards[0]
        try_claim_lease(
            ledger.lease_path(victim), "dead-worker", ttl=60.0, now=0.0
        )
        spec = ledger_spec(ledger)
        aggregators = [
            aggregator_from_spec(s) for s in ledger.aggregator_specs
        ]
        _execute_shard(
            ledger, spec, aggregators, victim, CharacterizationCache(),
            "dead-worker", 60.0, None, None,
        )
        # Truncate the journal to header + two of the cohort's four
        # runs, ending mid-append: the kill landed inside the cohort.
        journal_path = ledger.shard_journal_path(victim)
        lines = journal_path.read_text().splitlines()
        journal_path.write_text(
            "\n".join(lines[:3]) + "\n" + '{"kind": "run", "index": 2, "ro'
        )
        ledger.lease_path(victim).unlink()
        try_claim_lease(
            ledger.lease_path(victim), "dead-worker", ttl=1e-9, now=0.0
        )

        status = campaign_status(camp)
        assert status.count("stale") == 1
        with pytest.raises(ConfigurationError, match="incomplete"):
            merge_campaign(camp)

        report = run_worker(camp, worker_id="rescuer")
        assert victim.shard_id in report.shards_reclaimed
        assert victim.shard_id in report.shards_executed
        _assert_matches_reference(tmp_path, camp, reference)
