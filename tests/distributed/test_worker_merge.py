"""Workers and merge: determinism, stale-lease reclaim, torn journals.

The acceptance property: for any shard partition, any number of
workers, any interleaving — including a worker dying mid-chunk and its
lease being reclaimed — the merged aggregates, CSV, and completion
JSON are byte-identical to a single-host ``SweepRunner`` run.
"""

import json

import pytest

from repro.dist import (
    campaign_status,
    merge_campaign,
    plan_campaign,
    read_ledger,
    run_worker,
)
from repro.dist.plan import ledger_spec
from repro.dist.worker import _execute_shard
from repro.errors import ConfigurationError
from repro.io.dist import read_shard_journal, try_claim_lease
from repro.sim.cache import CharacterizationCache
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec, aggregator_from_spec


def small_spec(name="dist-small", duration=1.0):
    return SweepSpec(
        base=SimulationConfig(duration=duration),
        grid={"benchmark_name": ["gzip", "Web-med"], "cooling": ["Var", "Max"]},
        name=name,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The single-host run every distributed variant must reproduce."""
    root = tmp_path_factory.mktemp("reference")
    result = SweepRunner(small_spec(), csv_path=root / "ref.csv").run()
    result.save_json(root / "ref.json")
    return {
        "rows": result.rows,
        "agg_rows": [a.rows() for a in result.aggregators],
        "json": (root / "ref.json").read_bytes(),
        "csv": (root / "ref.csv").read_bytes(),
    }


def _assert_matches_reference(tmp_path, campaign_dir, reference):
    merged = merge_campaign(campaign_dir)
    assert merged.complete
    assert merged.rows == reference["rows"]
    assert [a.rows() for a in merged.aggregators] == reference["agg_rows"]
    merged.save_json(tmp_path / "dist.json")
    merged.save_csv(tmp_path / "dist.csv")
    assert (tmp_path / "dist.json").read_bytes() == reference["json"]
    assert (tmp_path / "dist.csv").read_bytes() == reference["csv"]


class TestPartitionDeterminism:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 4, 7])
    def test_any_partition_merges_byte_identical(
        self, tmp_path, reference, chunk_size
    ):
        """The property the whole subsystem exists for: shard layout is
        invisible in the merged outputs."""
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=chunk_size)
        run_worker(camp, worker_id="w1")
        _assert_matches_reference(tmp_path, camp, reference)

    def test_merge_order_is_canonical_not_completion_order(
        self, tmp_path, reference
    ):
        """Shards executed back-to-front still merge in run-index order."""
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=1)
        ledger = read_ledger(camp)
        spec = ledger_spec(ledger)
        aggregators = [
            aggregator_from_spec(s) for s in ledger.aggregator_specs
        ]
        cache = CharacterizationCache()
        for shard in reversed(ledger.shards):
            try_claim_lease(ledger.lease_path(shard), "w1", ttl=300.0)
            _execute_shard(
                ledger, spec, aggregators, shard, cache,
                "w1", 300.0, None, None,
            )
        _assert_matches_reference(tmp_path, camp, reference)

    def test_two_interleaved_workers(self, tmp_path, reference):
        """Workers alternating one shard at a time over the same ledger."""
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=1)
        workers = ["w1", "w2"]
        for turn in range(8):
            report = run_worker(
                camp, worker_id=workers[turn % 2], max_shards=1, wait=False
            )
            if not report.shards_executed:
                break
        _assert_matches_reference(tmp_path, camp, reference)


class TestCrashRecovery:
    def test_killed_worker_mid_chunk_is_reclaimed(self, tmp_path, reference):
        """A dead worker leaves an expired lease and a partial journal
        (with a torn trailing line); the next worker reclaims the lease,
        re-executes the shard from scratch, and the merge is still
        byte-identical."""
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=2)
        ledger = read_ledger(camp)
        victim = ledger.shards[0]
        # Emulate the kill: an already-expired lease plus a journal that
        # stops mid-append after one of the shard's two runs.
        try_claim_lease(
            ledger.lease_path(victim), "dead-worker", ttl=60.0, now=0.0
        )
        spec = ledger_spec(ledger)
        aggregators = [
            aggregator_from_spec(s) for s in ledger.aggregator_specs
        ]
        _execute_shard(
            ledger, spec, aggregators, victim, CharacterizationCache(),
            "dead-worker", 60.0, None, None,
        )
        journal_path = ledger.shard_journal_path(victim)
        lines = journal_path.read_text().splitlines()
        journal_path.write_text(
            "\n".join(lines[:2]) + "\n" + '{"kind": "run", "index": 1, "ro'
        )
        # Back-date the lease again (execute_shard refreshed it).
        ledger.lease_path(victim).unlink()
        try_claim_lease(
            ledger.lease_path(victim), "dead-worker", ttl=1e-9, now=0.0
        )

        status = campaign_status(camp)
        assert status.count("stale") == 1
        with pytest.raises(ConfigurationError, match="incomplete"):
            merge_campaign(camp)

        report = run_worker(camp, worker_id="rescuer")
        assert victim.shard_id in report.shards_reclaimed
        assert victim.shard_id in report.shards_executed
        _assert_matches_reference(tmp_path, camp, reference)

    def test_torn_journal_without_lease_is_reexecuted(self, tmp_path, reference):
        """A journal with no complete marker and no lease (worker died
        after releasing nothing) is simply redone."""
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=4)
        ledger = read_ledger(camp)
        shard = ledger.shards[0]
        journal_path = ledger.shard_journal_path(shard)
        journal_path.write_text(
            json.dumps(
                {
                    "kind": "header",
                    "format": "repro-dist-shard",
                    "version": 1,
                    "campaign": ledger.fingerprint,
                    "shard": shard.shard_id,
                    "start": shard.start,
                    "stop": shard.stop,
                    "worker": "dead",
                }
            )
            + "\n"
            + '{"kind": "run", "index": 0, "torn'
        )
        parsed = read_shard_journal(journal_path, shard, ledger.fingerprint)
        assert parsed.torn and not parsed.complete
        run_worker(camp, worker_id="rescuer")
        _assert_matches_reference(tmp_path, camp, reference)

    def test_partial_merge_folds_contiguous_prefix(self, tmp_path):
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=1)
        run_worker(camp, worker_id="w1", max_shards=2)
        merged = merge_campaign(camp, allow_partial=True)
        assert not merged.complete
        assert merged.folded == 2
        assert [row["run"] for row in merged.rows] == [0, 1]
        assert len(merged.shards_missing) == 2
        assert merged.shards_skipped == []

    def test_partial_merge_reports_stranded_shards_beyond_gap(self, tmp_path):
        """Complete shards after the first gap cannot fold (replay is
        order-sensitive) and must be reported, not silently ignored."""
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=1)
        run_worker(camp, worker_id="w1")
        ledger = read_ledger(camp)
        # Knock out shard 1: shards 2 and 3 are finished but stranded.
        ledger.shard_journal_path(ledger.shards[1]).unlink()
        merged = merge_campaign(camp, allow_partial=True)
        assert merged.folded == 1
        assert merged.shards_merged == 1
        assert merged.shards_missing == [ledger.shards[1].shard_id]
        assert merged.shards_skipped == [
            s.shard_id for s in ledger.shards[2:]
        ]

    def test_journal_from_wrong_campaign_is_refused(self, tmp_path):
        camp_a = tmp_path / "a"
        camp_b = tmp_path / "b"
        plan_campaign(small_spec(name="a"), camp_a, chunk_size=4)
        other = SweepSpec(
            base=SimulationConfig(duration=2.0),
            grid={"benchmark_name": ["gzip", "Web-med"],
                  "cooling": ["Var", "Max"]},
            name="b",
        )
        plan_campaign(other, camp_b, chunk_size=4)
        run_worker(camp_a, worker_id="w1")
        ledger_a = read_ledger(camp_a)
        ledger_b = read_ledger(camp_b)
        journal = ledger_a.shard_journal_path(ledger_a.shards[0])
        target = ledger_b.shard_journal_path(ledger_b.shards[0])
        target.write_bytes(journal.read_bytes())
        with pytest.raises(ConfigurationError, match="different campaign|belongs"):
            merge_campaign(camp_b)


class TestWorkerBehaviour:
    def test_max_shards_bounds_a_session(self, tmp_path):
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=1)
        report = run_worker(camp, worker_id="w1", max_shards=3)
        assert len(report.shards_executed) == 3
        assert campaign_status(camp).count("done") == 3

    def test_no_wait_returns_when_all_leased_elsewhere(self, tmp_path):
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=4)
        ledger = read_ledger(camp)
        for shard in ledger.shards:
            try_claim_lease(ledger.lease_path(shard), "other", ttl=300.0)
        report = run_worker(camp, worker_id="w1", wait=False)
        assert report.shards_executed == []
        assert report.runs_executed == 0

    def test_worker_on_finished_campaign_is_noop(self, tmp_path):
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=2)
        run_worker(camp, worker_id="w1")
        report = run_worker(camp, worker_id="w2")
        assert report.shards_executed == []

    def test_status_reports_running_lease(self, tmp_path):
        camp = tmp_path / "camp"
        plan_campaign(small_spec(), camp, chunk_size=4)
        ledger = read_ledger(camp)
        try_claim_lease(ledger.lease_path(ledger.shards[0]), "w9", ttl=300.0)
        status = campaign_status(camp)
        assert status.count("running") == 1
        assert status.shards[0].worker == "w9"
