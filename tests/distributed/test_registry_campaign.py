"""Registry-keyed, parameterized campaigns through the dist pipeline.

Satellite acceptance: registry keys and component params survive the
ledger payload round-trip, and a sharded campaign over them merges
byte-identical to a single-host sweep — including the data-driven
energy histogram, whose range derivation is replay-order dependent.
"""

import json

import pytest

from repro.dist import merge_campaign, plan_campaign, read_ledger, run_worker
from repro.dist.plan import ledger_spec
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec


def registry_spec(name="pid-campaign"):
    """A spec exercising every registry surface: a registry-only
    policy, a parameterized controller, and a dotted params axis."""
    return SweepSpec(
        base=SimulationConfig(
            benchmark_name="gzip",
            policy="TALB",
            controller="pid",
            controller_params={"kd": 0.25},
            duration=1.0,
        ),
        points=[{"policy": "TALB"}, {"policy": "RR"}],
        grid={"controller_params.kp": [0.75, 1.5]},
        name=name,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    root = tmp_path_factory.mktemp("registry-ref")
    result = SweepRunner(registry_spec(), csv_path=root / "ref.csv").run()
    result.save_json(root / "ref.json")
    return {
        "rows": result.rows,
        "json": (root / "ref.json").read_bytes(),
        "csv": (root / "ref.csv").read_bytes(),
    }


class TestLedgerRoundTrip:
    def test_ledger_payload_reconstructs_the_exact_spec(self, tmp_path):
        spec = registry_spec()
        plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        ledger = read_ledger(tmp_path / "camp")
        clone = ledger_spec(ledger)  # Verifies fingerprint en route.
        assert clone.fingerprint() == spec.fingerprint()
        assert [p.key for p in clone.iter_points()] == [
            p.key for p in spec.iter_points()
        ]
        assert [dict(p.config.controller_params) for p in clone.iter_points()] == [
            dict(p.config.controller_params) for p in spec.iter_points()
        ]
        assert [p.config.policy for p in clone.iter_points()] == [
            "TALB", "TALB", "RR", "RR"
        ]

    def test_ledger_spec_payload_is_json_lossless(self, tmp_path):
        plan_campaign(registry_spec(), tmp_path / "camp", chunk_size=2)
        raw = (tmp_path / "camp" / "ledger.jsonl").read_text().splitlines()[0]
        payload = json.loads(raw)["spec"]
        assert payload["base"]["controller"] == "pid"
        assert payload["base"]["controller_params"] == {"kd": 0.25}
        assert payload["grid"]["controller_params.kp"] == [0.75, 1.5]


class TestShardedExecution:
    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_merge_byte_identical_to_single_host(
        self, tmp_path, reference, chunk_size
    ):
        camp = tmp_path / "camp"
        plan_campaign(registry_spec(), camp, chunk_size=chunk_size)
        run_worker(camp, worker_id="w1")
        merged = merge_campaign(camp)
        assert merged.complete
        assert merged.rows == reference["rows"]
        merged.save_json(tmp_path / "dist.json")
        merged.save_csv(tmp_path / "dist.csv")
        assert (tmp_path / "dist.json").read_bytes() == reference["json"]
        assert (tmp_path / "dist.csv").read_bytes() == reference["csv"]

    def test_rows_carry_params_columns(self, reference):
        first = reference["rows"][0]
        assert first["controller"] == "pid"
        assert json.loads(first["controller_params"]) == {"kd": 0.25, "kp": 0.75}
        policies = {row["policy"] for row in reference["rows"]}
        assert policies == {"TALB", "RR"}
