"""Facility-axis campaigns through the dist pipeline.

Tentpole acceptance: a sweep over the facility key and dotted
``facility_params`` axes plans, shards, and merges byte-identically to
a single-host run — including under two concurrent workers — and the
merged rows carry the PUE/cooling-power columns.
"""

import json
import threading

import pytest

from repro.dist import merge_campaign, plan_campaign, read_ledger, run_worker
from repro.dist.plan import ledger_spec
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec


def facility_spec(name="facility-campaign"):
    """Fixed-inlet vs closed-loop, plus a dotted climate axis."""
    return SweepSpec(
        base=SimulationConfig(benchmark_name="Web-med", duration=1.0),
        points=[
            {"facility": "none"},
            {"facility": "closed-loop"},
            {"facility": "closed-loop",
             "facility_params": {"wet_bulb_c": 14.0,
                                 "supply_setpoint_c": 45.0}},
        ],
        name=name,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    root = tmp_path_factory.mktemp("facility-ref")
    result = SweepRunner(facility_spec(), csv_path=root / "ref.csv").run()
    result.save_json(root / "ref.json")
    return {
        "rows": result.rows,
        "json": (root / "ref.json").read_bytes(),
        "csv": (root / "ref.csv").read_bytes(),
    }


class TestLedgerRoundTrip:
    def test_ledger_payload_reconstructs_the_exact_spec(self, tmp_path):
        spec = facility_spec()
        plan_campaign(spec, tmp_path / "camp", chunk_size=2)
        ledger = read_ledger(tmp_path / "camp")
        clone = ledger_spec(ledger)  # Verifies fingerprint en route.
        assert clone.fingerprint() == spec.fingerprint()
        assert [p.config.facility for p in clone.iter_points()] == [
            "none", "closed-loop", "closed-loop"
        ]
        assert [dict(p.config.facility_params) for p in clone.iter_points()] == [
            {}, {}, {"supply_setpoint_c": 45.0, "wet_bulb_c": 14.0}
        ]


class TestShardedExecution:
    def test_two_concurrent_workers_merge_byte_identical(
        self, tmp_path, reference
    ):
        camp = tmp_path / "camp"
        plan_campaign(facility_spec(), camp, chunk_size=1)
        threads = [
            threading.Thread(
                target=run_worker, args=(camp,),
                kwargs={"worker_id": f"w{i}"},
            )
            for i in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = merge_campaign(camp)
        assert merged.complete
        assert merged.rows == reference["rows"]
        merged.save_json(tmp_path / "dist.json")
        merged.save_csv(tmp_path / "dist.csv")
        assert (tmp_path / "dist.json").read_bytes() == reference["json"]
        assert (tmp_path / "dist.csv").read_bytes() == reference["csv"]

    def test_rows_carry_facility_metric_columns(self, reference):
        rows = reference["rows"]
        assert [row["facility"] for row in rows] == [
            "none", "closed-loop", "closed-loop"
        ]
        assert rows[0]["pue"] is None  # Fixed inlet: no plant.
        assert rows[1]["pue"] > 1.0
        assert rows[2]["total_cooling_power_w"] > 0.0
        assert json.loads(rows[2]["facility_params"]) == {
            "supply_setpoint_c": 45.0, "wet_bulb_c": 14.0
        }
