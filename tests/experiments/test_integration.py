"""Cross-module integration: a reduced Figure 6/8-style sweep.

These are the repository's end-to-end checks: each assertion is one of
the paper's qualitative claims, evaluated on short runs of a reduced
workload set so the suite stays fast.
"""

import pytest

from repro.constants import CONTROL
from repro.experiments import common
from repro.metrics.energy import EnergyBreakdown, cooling_energy_savings
from repro.metrics.thermal_metrics import (
    hotspot_frequency,
    spatial_gradient_frequency,
)
from repro.sim.config import CoolingMode, PolicyKind

DURATION = 8.0


@pytest.fixture(scope="module")
def runs():
    out = {}
    for policy, cooling in common.POLICY_MATRIX:
        for bench in ("Web-high", "gzip"):
            out[(policy, cooling, bench)] = common.run_point(
                policy, cooling, bench, duration=DURATION
            )
    return out


class TestPaperClaims:
    def test_max_flow_prevents_all_hotspots(self, runs):
        """'the coolant flowing at the maximum rate is able to prevent
        all the hot spots'."""
        for policy in (PolicyKind.LB, PolicyKind.MIGRATION, PolicyKind.TALB):
            for bench in ("Web-high", "gzip"):
                r = runs[(policy, CoolingMode.LIQUID_MAX, bench)]
                assert hotspot_frequency(r) == 0.0

    def test_air_cooling_shows_hotspots_on_hot_workload(self, runs):
        r = runs[(PolicyKind.LB, CoolingMode.AIR, "Web-high")]
        assert hotspot_frequency(r) > 5.0

    def test_variable_flow_maintains_target(self, runs):
        """'Our method guarantees operating below the target
        temperature' (sensor-level, 0.5 K tolerance for transients)."""
        for bench in ("Web-high", "gzip"):
            r = runs[(PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE, bench)]
            assert r.peak_temperature() <= CONTROL.target_temperature + 0.5

    def test_variable_flow_saves_cooling_energy(self, runs):
        """Savings exist for both, and the low-utilization workload
        saves much more (the 'up to 30%' regime)."""
        savings = {}
        for bench in ("Web-high", "gzip"):
            var = EnergyBreakdown.from_result(
                runs[(PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE, bench)]
            )
            mx = EnergyBreakdown.from_result(
                runs[(PolicyKind.TALB, CoolingMode.LIQUID_MAX, bench)]
            )
            savings[bench] = cooling_energy_savings(var, mx)
        assert savings["gzip"] > 0.30
        assert savings["gzip"] > savings["Web-high"] >= 0.0

    def test_liquid_reduces_gradients_vs_air(self, runs):
        air = runs[(PolicyKind.LB, CoolingMode.AIR, "Web-high")]
        liquid = runs[(PolicyKind.LB, CoolingMode.LIQUID_MAX, "Web-high")]
        assert spatial_gradient_frequency(liquid) <= spatial_gradient_frequency(air)

    def test_throughput_not_hurt_by_variable_flow(self, runs):
        """'our technique is able to improve the energy savings without
        any effect on the performance'."""
        for bench in ("Web-high", "gzip"):
            var = runs[(PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE, bench)]
            mx = runs[(PolicyKind.LB, CoolingMode.LIQUID_MAX, bench)]
            assert var.throughput() == pytest.approx(mx.throughput(), rel=0.05)

    def test_pump_energy_zero_for_air(self, runs):
        r = runs[(PolicyKind.LB, CoolingMode.AIR, "gzip")]
        assert r.pump_energy() == 0.0

    def test_variable_flow_rides_lower_settings_on_light_load(self, runs):
        r_gzip = runs[(PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE, "gzip")]
        r_web = runs[(PolicyKind.TALB, CoolingMode.LIQUID_VARIABLE, "Web-high")]
        assert r_gzip.mean_flow_setting() < r_web.mean_flow_setting()


class TestDpmVariationStudy:
    """Reduced Figure 7: TALB suppresses DPM-induced variations."""

    @pytest.fixture(scope="class")
    def dpm_runs(self):
        out = {}
        for policy in (PolicyKind.LB, PolicyKind.TALB):
            out[policy] = common.run_point(
                policy,
                CoolingMode.LIQUID_MAX,
                "Database",
                duration=DURATION,
                dpm=True,
            )
        return out

    def test_talb_reduces_spatial_gradients(self, dpm_runs):
        lb = spatial_gradient_frequency(dpm_runs[PolicyKind.LB])
        talb = spatial_gradient_frequency(dpm_runs[PolicyKind.TALB])
        assert talb <= lb
