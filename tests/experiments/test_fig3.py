"""Figure 3 regeneration: pump power and per-cavity flows."""

import pytest

from repro.experiments import fig3


@pytest.fixture(scope="module")
def rows():
    return fig3.run()


class TestFigure3:
    def test_five_rows(self, rows):
        assert len(rows) == 5

    def test_pump_flow_axis(self, rows):
        assert [r["pump_flow_lh"] for r in rows] == pytest.approx(
            [75.0, 150.0, 225.0, 300.0, 375.0]
        )

    def test_2layer_series_matches_paper(self, rows):
        """Figure 3: ~208 to ~1042 ml/min per cavity for 3 cavities."""
        flows = [r["per_cavity_2layer_mlmin"] for r in rows]
        assert flows[0] == pytest.approx(208.33, rel=1e-3)
        assert flows[-1] == pytest.approx(1041.67, rel=1e-3)

    def test_4layer_series_matches_paper(self, rows):
        flows = [r["per_cavity_4layer_mlmin"] for r in rows]
        assert flows[0] == pytest.approx(125.0, rel=1e-3)
        assert flows[-1] == pytest.approx(625.0, rel=1e-3)

    def test_4layer_always_below_2layer(self, rows):
        """Five cavities share the same pump: less flow per cavity."""
        for r in rows:
            assert r["per_cavity_4layer_mlmin"] < r["per_cavity_2layer_mlmin"]

    def test_power_range_matches_figure(self, rows):
        powers = [r["pump_power_w"] for r in rows]
        assert powers[0] == pytest.approx(3.72, rel=1e-2)
        assert powers[-1] == pytest.approx(21.0, rel=1e-2)
        assert powers == sorted(powers)

    def test_power_growth_superlinear(self, rows):
        """Quadratic growth: the last step (75 l/h) costs more watts
        than the first step."""
        powers = [r["pump_power_w"] for r in rows]
        assert powers[-1] - powers[-2] > powers[1] - powers[0]
