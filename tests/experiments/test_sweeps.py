"""Parameter-sensitivity sweeps."""

import pytest

from repro.experiments import sweeps


class TestInletSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return sweeps.inlet_temperature_sweep(inlets=(45.0, 60.0, 67.5))

    def test_band_translates_with_inlet(self, rows):
        """T_max rises roughly one-for-one with the inlet temperature."""
        for a, b in zip(rows, rows[1:]):
            d_inlet = b["inlet_degC"] - a["inlet_degC"]
            d_tmax = b["tmax_at_min_flow"] - a["tmax_at_min_flow"]
            assert d_tmax == pytest.approx(d_inlet, rel=0.25)

    def test_band_width_stable(self, rows):
        """The min-to-max-flow spread barely depends on the inlet, so
        the flow ordering is inlet-independent."""
        widths = [r["band_width"] for r in rows]
        assert max(widths) - min(widths) < 2.0


class TestHysteresisSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return sweeps.hysteresis_sweep(values=(0.0, 2.0, 4.0), duration=10.0)

    def test_more_hysteresis_fewer_or_equal_switches(self, rows):
        switches = [r["setting_switches"] for r in rows]
        assert switches[-1] <= switches[0]

    def test_target_held_at_paper_value(self, rows):
        by_h = {r["hysteresis_K"]: r for r in rows}
        assert by_h[2.0]["peak_temperature"] <= 80.5


class TestIdlePowerSweep:
    def test_shift_is_small(self):
        rows = sweeps.idle_power_sweep(values=(0.5, 1.5))
        shift = (
            rows[1]["tmax_low_util_min_flow"] - rows[0]["tmax_low_util_min_flow"]
        )
        assert 0.0 < shift < 8.0
