"""The one-shot evaluation report generator."""

import pytest

from repro.experiments.report import build_report, write_report


@pytest.mark.slow
class TestReport:
    def test_report_contains_every_section(self, tmp_path):
        path = write_report(tmp_path / "report.md", duration=6.0)
        text = path.read_text()
        for heading in (
            "Table II",
            "Figure 3",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Headline",
            "4-layer",
            "prior work",
        ):
            assert heading in text

    def test_report_is_markdown(self):
        text = build_report(duration=6.0)
        assert text.startswith("# Evaluation report")
        assert "```" in text
