"""The 4-layer system sweep."""

import pytest

from repro.experiments import fourlayer


@pytest.fixture(scope="module")
def rows():
    return fourlayer.run(duration=8.0, workloads=("Database", "gzip"))


class TestFourLayer:
    def test_three_policy_rows(self, rows):
        assert [r["policy"] for r in rows] == ["LB (Max)", "TALB (Max)", "TALB (Var)"]

    def test_no_hotspots_under_liquid(self, rows):
        for row in rows:
            assert row["hotspots_avg_pct"] == 0.0

    def test_variable_flow_saves_pump_energy(self, rows):
        by_policy = {r["policy"]: r for r in rows}
        assert (
            by_policy["TALB (Var)"]["energy_pump"]
            < by_policy["TALB (Max)"]["energy_pump"]
        )

    def test_controller_holds_target_on_light_load(self, rows):
        by_policy = {r["policy"]: r for r in rows}
        assert by_policy["TALB (Var)"]["target_held"]

    def test_talb_no_hotter_than_lb(self, rows):
        """Inter-tier heterogeneity: the weighted balancer exploits the
        better-cooled tier and lowers the peak."""
        by_policy = {r["policy"]: r for r in rows}
        assert (
            by_policy["TALB (Max)"]["peak_temperature"]
            <= by_policy["LB (Max)"]["peak_temperature"] + 0.1
        )
