"""Figure 5 regeneration: flow requirement staircase."""

import numpy as np
import pytest

from repro.experiments import fig5


@pytest.fixture(scope="module")
def rows_2layer():
    return fig5.run(
        n_layers=2,
        utilizations=(0.0, 0.3, 0.6, 0.93),
        include_continuous=False,
    )


class TestStaircase:
    def test_tmax_monotone_in_utilization(self, rows_2layer):
        temps = [r["tmax_at_lowest"] for r in rows_2layer]
        assert temps == sorted(temps)

    def test_required_setting_monotone(self, rows_2layer):
        settings = [r["required_setting"] for r in rows_2layer]
        assert settings == sorted(settings)

    def test_x_axis_spans_paper_band(self, rows_2layer):
        """Figure 5's x axis runs from ~70 to ~90 degC."""
        temps = [r["tmax_at_lowest"] for r in rows_2layer]
        assert 68.0 < temps[0] < 78.0
        assert 82.0 < temps[-1] < 92.0

    def test_idle_needs_minimum_flow(self, rows_2layer):
        assert rows_2layer[0]["required_setting"] == 0

    def test_hottest_needs_near_maximum(self, rows_2layer):
        assert rows_2layer[-1]["required_setting"] >= 3

    def test_selected_settings_hold_target(self, rows_2layer):
        assert all(r["holds_target"] for r in rows_2layer)


@pytest.mark.slow
class TestFourLayerComparison:
    def test_4layer_needs_higher_settings(self):
        """Figure 5: at the same workload the 4-layer system needs at
        least the 2-layer system's setting (less per-cavity flow, more
        stacked heat)."""
        utils = (0.0, 0.5, 0.9)
        rows2 = fig5.run(2, utilizations=utils, include_continuous=False)
        rows4 = fig5.run(4, utilizations=utils, include_continuous=False)
        for r2, r4 in zip(rows2, rows4):
            assert r4["required_setting"] >= r2["required_setting"]


@pytest.mark.slow
class TestContinuousCurve:
    def test_continuous_flow_below_discrete(self):
        """The continuous minimum (circles in Figure 5) never exceeds
        the discrete staircase above it."""
        rows = fig5.run(2, utilizations=(0.2, 0.6, 0.9), include_continuous=True)
        for row in rows:
            if np.isfinite(row["continuous_flow_mlmin"]):
                assert (
                    row["continuous_flow_mlmin"]
                    <= row["discrete_flow_mlmin"] * 1.001
                )
