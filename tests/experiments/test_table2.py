"""Table II regeneration: the workload generator hits the targets."""

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def rows():
    return table2.run(duration=60.0)


class TestTable2:
    def test_eight_rows(self, rows):
        assert len(rows) == 8

    def test_measured_utilization_tracks_paper(self, rows):
        for row in rows:
            assert row["measured_util_pct"] == pytest.approx(
                row["paper_util_pct"], rel=0.3
            )

    def test_thread_lengths_in_regime(self, rows):
        for row in rows:
            assert 30.0 < row["median_len_ms"] < 250.0
            assert row["p95_len_ms"] < 800.0

    def test_busier_benchmarks_generate_more_threads(self, rows):
        by_name = {r["benchmark"]: r for r in rows}
        assert by_name["Web-high"]["threads"] > by_name["gzip"]["threads"]
