"""Workload registry keys + params through specs, signatures, resume.

The last hard-coded axis: ``workload``/``workload_params`` must behave
exactly like the policy/controller/forecaster fields — swept by key,
parameterized by dotted axes, spelled-invariant in fingerprints, absent
from signatures at their defaults (so pre-existing checkpoints and
campaign ledgers stay valid), and bit-identical across resume.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.spec import config_signature


class TestWorkloadAxis:
    def test_axis_values_normalize_to_canonical_keys(self):
        spec = SweepSpec(
            base=SimulationConfig(duration=1.0),
            grid={"workload": ["synthetic", "DIURNAL", "replay"]},
        )
        assert [p.config.workload for p in spec.iter_points()] == [
            "table2", "diurnal", "trace-replay"
        ]

    def test_workload_axis_is_not_a_benchmark_alias(self):
        """Historically 'workload' aliased benchmark_name; now it names
        the workload-model field, so a benchmark value is rejected."""
        with pytest.raises(ConfigurationError, match="choose from"):
            SweepSpec(grid={"workload": ["gzip"]})

    def test_unknown_workload_key_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            SweepSpec(grid={"workload": ["no-such-model"]})

    def test_spelling_does_not_change_fingerprint(self):
        def fp(key):
            return SweepSpec(
                base=SimulationConfig(duration=1.0),
                grid={"workload": [key]},
            ).fingerprint()
        assert fp("table2") == fp("SYNTHETIC")
        assert fp("trace-replay") == fp("replay")


class TestWorkloadParamsAxes:
    def test_dotted_workload_params_axis(self):
        spec = SweepSpec(
            base=SimulationConfig(workload="flash-crowd", duration=1.0),
            grid={"workload_params.burst_rate": [0.05, 0.2, 0.5]},
        )
        rates = [
            p.config.workload_params["burst_rate"] for p in spec.iter_points()
        ]
        assert rates == [0.05, 0.2, 0.5]
        assert spec.run_count == 3

    def test_dotted_axis_merges_with_base_params(self):
        spec = SweepSpec(
            base=SimulationConfig(
                workload="diurnal",
                workload_params={"shape": "square"},
                duration=1.0,
            ),
            grid={"workload_params.peak_utilization": [0.8]},
        )
        point = next(spec.iter_points())
        assert dict(point.config.workload_params) == {
            "shape": "square", "peak_utilization": 0.8,
        }

    def test_bad_param_name_caught_by_validate_all(self):
        # Position 0 (flash-crowd, which has burst_rate) is clean...
        spec = SweepSpec(
            base=SimulationConfig(duration=1.0),
            zip_axes={"workload": ["flash-crowd", "diurnal"],
                      "workload_params.burst_rate": [0.1, 0.1]},
        )
        # ...but diurnal has no burst_rate, which the full walk names.
        with pytest.raises(ConfigurationError, match="no parameter 'burst_rate'"):
            spec.validate_all()

    def test_point_keys_render_params_canonically(self):
        spec = SweepSpec(
            base=SimulationConfig(duration=1.0),
            points=[{"workload": "flash-crowd",
                     "workload_params": {"burst_rate": 0.2,
                                         "burst_duration": 1.0}}],
        )
        key = next(spec.iter_points()).key
        assert 'workload_params={"burst_duration":1.0,"burst_rate":0.2}' in key

    def test_param_spelling_does_not_change_identity(self):
        def fp(value):
            return SweepSpec(
                base=SimulationConfig(
                    workload="flash-crowd",
                    workload_params={"burst_duration": value},
                    duration=1.0,
                ),
                grid={"benchmark_name": ["gzip"]},
            ).fingerprint()
        assert fp(1) == fp(1.0)


class TestSerializationRoundTrip:
    def _spec(self):
        return SweepSpec(
            base=SimulationConfig(
                workload="flash-crowd",
                workload_params={"burst_utilization": 0.9},
                duration=1.0,
            ),
            grid={"workload_params.burst_rate": [0.05, 0.2]},
            points=[{"benchmark": "gzip"}, {"benchmark": "Web-med"}],
            name="crowd-study",
        )

    def test_dict_round_trip_preserves_fingerprint_and_keys(self):
        spec = self._spec()
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.fingerprint() == spec.fingerprint()
        assert [p.key for p in clone.iter_points()] == [
            p.key for p in spec.iter_points()
        ]
        assert [dict(p.config.workload_params) for p in clone.iter_points()] == [
            dict(p.config.workload_params) for p in spec.iter_points()
        ]

    def test_spec_file_with_workload_axes(self, tmp_path):
        path = tmp_path / "crowd.json"
        path.write_text(json.dumps({
            "base": {"duration": 1.0, "workload": "flash-crowd"},
            "grid": {"workload_params.burst_rate": [0.05, 0.2]},
        }))
        spec = SweepSpec.from_file(path)
        assert spec.run_count == 2
        first = next(spec.iter_points())
        assert first.config.workload == "flash-crowd"
        assert dict(first.config.workload_params) == {"burst_rate": 0.05}


class TestSignatureBackCompat:
    def test_workload_fields_omitted_from_signature_at_defaults(self):
        """A config that never touches the workload fields keeps its
        pre-refactor signature payload — old fingerprints, checkpoints,
        and campaign ledgers stay valid."""
        signature = config_signature(SimulationConfig(duration=2.0))
        assert "workload" not in signature
        assert "workload_params" not in signature

    def test_non_default_workload_fields_are_captured(self):
        signature = config_signature(SimulationConfig(
            workload="flash-crowd",
            workload_params={"burst_rate": 0.2},
            duration=2.0,
        ))
        assert signature["workload"] == "flash-crowd"
        assert signature["workload_params"] == {"burst_rate": 0.2}

    def test_default_key_spelled_via_alias_still_omitted(self):
        """'synthetic' normalizes to the default key, so it is still
        absent — spelling can never fork a fingerprint."""
        signature = config_signature(
            SimulationConfig(workload="synthetic", duration=2.0)
        )
        assert "workload" not in signature


class TestSweepAndResume:
    def _spec(self, name="wl"):
        return SweepSpec(
            base=SimulationConfig(duration=1.0),
            grid={"workload": ["table2", "diurnal", "flash-crowd"]},
            name=name,
        )

    def test_workload_axis_runs_produce_distinct_traces(self):
        result = SweepRunner(self._spec()).run()
        assert result.complete and result.folded == 3
        energies = [row["total_energy_j"] for row in result.rows]
        assert len(set(energies)) == 3  # Each model drives a different run.

    def test_resume_is_bit_identical(self, tmp_path):
        spec = self._spec()
        whole = SweepRunner(spec, csv_path=tmp_path / "a.csv").run()
        ck = tmp_path / "ck.jsonl"
        SweepRunner(
            spec, checkpoint=ck, csv_path=tmp_path / "b.csv", stop_after=2
        ).run()
        resumed = SweepRunner(
            spec, checkpoint=ck, csv_path=tmp_path / "b.csv"
        ).run(resume=True)
        assert resumed.complete and resumed.resumed == 2
        assert resumed.rows == whole.rows
        assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()
        for agg_a, agg_b in zip(whole.aggregators, resumed.aggregators):
            assert agg_a.rows() == agg_b.rows()

    def test_csv_rows_carry_workload_columns(self, tmp_path):
        SweepRunner(self._spec(), csv_path=tmp_path / "out.csv").run()
        header = (tmp_path / "out.csv").read_text().splitlines()[0]
        assert "workload" in header.split(",")
        assert "workload_params" in header.split(",")
