"""Cohort execution through the sweep layer is byte-identical to the
serial per-run path — aggregates, CSV, and completion JSON — for
grid/zip/points sweeps, with or without payload-only transport.

``TestCohortSerialSmoke`` is the gating CI smoke (mirroring the
2-worker distributed smoke): a small policy/controller grid through
both paths, byte-compared end to end.
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.aggregate import Aggregator, default_aggregators
from repro.sweep.runner import FoldReducer, _spec_rebuildable


def run_both(tmp_path, spec, **kwargs):
    """Run a spec with cohort off and on; return both output byte sets."""
    outputs = {}
    for mode in ("off", "auto"):
        json_path = tmp_path / f"{mode}.json"
        csv_path = tmp_path / f"{mode}.csv"
        result = SweepRunner(
            spec, csv_path=csv_path, cohort=mode, **kwargs
        ).run()
        result.save_json(json_path)
        outputs[mode] = {
            "rows": result.rows,
            "agg_rows": [agg.rows() for agg in result.aggregators],
            "json": json_path.read_bytes(),
            "csv": csv_path.read_bytes(),
        }
    return outputs["off"], outputs["auto"]


def assert_outputs_identical(serial, cohort):
    assert cohort["rows"] == serial["rows"]
    assert cohort["agg_rows"] == serial["agg_rows"]
    assert cohort["json"] == serial["json"]
    assert cohort["csv"] == serial["csv"]


class TestCohortSerialSmoke:
    """The gating CI smoke: policy/controller grid, cohort vs serial."""

    def test_policy_controller_grid_byte_identical(self, tmp_path):
        spec = SweepSpec(
            base=SimulationConfig(duration=0.6, nx=12, ny=12),
            grid={
                "policy": ["TALB", "RR"],
                "controller": ["lut", "stepwise"],
            },
            name="cohort-smoke",
        )
        serial, cohort = run_both(tmp_path, spec)
        assert_outputs_identical(serial, cohort)


class TestCohortSweepByteIdentity:
    def test_zip_sweep(self, tmp_path):
        spec = SweepSpec(
            base=SimulationConfig(duration=0.5, nx=12, ny=12),
            zip_axes={
                "policy": ["TALB", "LB", "RR"],
                "seed": [0, 1, 2],
            },
            name="cohort-zip",
        )
        serial, cohort = run_both(tmp_path, spec)
        assert_outputs_identical(serial, cohort)

    def test_points_sweep_mixed_networks(self, tmp_path):
        """Explicit points spanning two networks plus a singleton."""
        spec = SweepSpec(
            base=SimulationConfig(duration=0.5, nx=12, ny=12),
            points=[
                {"policy": "TALB"},
                {"nx": 8, "ny": 8},
                {"policy": "RR"},
                {"nx": 8, "ny": 8, "policy": "LB"},
                {"cooling": "Air"},
            ],
            name="cohort-points",
        )
        serial, cohort = run_both(tmp_path, spec)
        assert_outputs_identical(serial, cohort)

    def test_grid_sweep_parallel_workers(self, tmp_path):
        spec = SweepSpec(
            base=SimulationConfig(duration=0.4, nx=12, ny=12),
            grid={"policy": ["TALB", "RR"], "seed": [0, 1]},
            name="cohort-par",
        )
        serial, cohort = run_both(tmp_path, spec, max_workers=2)
        assert_outputs_identical(serial, cohort)

    def test_checkpoint_resume_crosses_cohort(self, tmp_path):
        """Interrupting mid-cohort and resuming stays byte-identical."""
        def spec():
            return SweepSpec(
                base=SimulationConfig(duration=0.4, nx=12, ny=12),
                grid={"policy": ["TALB", "LB", "RR"]},
                name="cohort-resume",
            )

        ref_json = tmp_path / "ref.json"
        ref = SweepRunner(spec(), csv_path=tmp_path / "ref.csv").run()
        ref.save_json(ref_json)

        ckpt = tmp_path / "sweep.ckpt"
        SweepRunner(spec(), checkpoint=ckpt, stop_after=1).run()
        resumed = SweepRunner(
            spec(), checkpoint=ckpt, csv_path=tmp_path / "res.csv"
        ).run(resume=True)
        resumed.save_json(tmp_path / "res.json")
        assert resumed.complete and resumed.resumed == 1
        assert (tmp_path / "res.json").read_bytes() == ref_json.read_bytes()
        assert (
            (tmp_path / "res.csv").read_bytes()
            == (tmp_path / "ref.csv").read_bytes()
        )


class TestPayloadTransport:
    def test_fold_reducer_matches_full_path(self, tmp_path):
        """on_result forces full-result transport; without it the
        reduced path must produce the same bytes."""
        def spec():
            return SweepSpec(
                base=SimulationConfig(duration=0.4, nx=12, ny=12),
                grid={"policy": ["TALB", "RR"], "seed": [0, 1]},
                name="transport",
            )

        seen = []

        def on_result(point, result):
            assert isinstance(result, SimulationResult)
            seen.append(point.index)

        full = SweepRunner(
            spec(), csv_path=tmp_path / "full.csv", on_result=on_result
        ).run()
        full.save_json(tmp_path / "full.json")
        assert seen == [0, 1, 2, 3]

        reduced = SweepRunner(spec(), csv_path=tmp_path / "red.csv").run()
        reduced.save_json(tmp_path / "red.json")
        assert (
            (tmp_path / "red.json").read_bytes()
            == (tmp_path / "full.json").read_bytes()
        )
        assert (
            (tmp_path / "red.csv").read_bytes()
            == (tmp_path / "full.csv").read_bytes()
        )

    def test_fold_reducer_pickles_without_instances(self):
        import pickle

        reducer = FoldReducer([agg.spec() for agg in default_aggregators()])
        clone = pickle.loads(pickle.dumps(reducer))
        assert clone.aggregator_specs == reducer.aggregator_specs
        assert clone._aggregators is None

    def test_custom_aggregator_disables_reduced_transport(self, tmp_path):
        """A subclass the spec factory can't rebuild must keep getting
        full results (and the sweep still completes)."""

        class Peaks(Aggregator):
            def __init__(self):
                self.peaks = []

            def spec(self):
                return {"kind": "scalar"}  # lies: factory builds ScalarAggregator

            def update(self, config, result):
                self.peaks.append(result.peak_temperature())

            def state_dict(self):
                return {"peaks": self.peaks}

            def load_state(self, state):
                self.peaks = list(state["peaks"])

            def rows(self):
                return []

        assert not _spec_rebuildable([Peaks()])
        agg = Peaks()
        spec = SweepSpec(
            base=SimulationConfig(duration=0.4, nx=12, ny=12),
            grid={"policy": ["TALB", "RR"]},
            name="custom",
        )
        result = SweepRunner(spec, aggregators=[agg]).run()
        assert result.complete
        assert len(agg.peaks) == 2
