"""SweepRunner: streaming folds, checkpoint journal, bit-identical resume."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import BatchRunner
from repro.sim.config import SimulationConfig
from repro.sweep import Aggregator, SweepRunner, SweepSpec, read_status


def small_spec(name="small", duration=1.0):
    """A 4-run sweep small enough for test budgets."""
    return SweepSpec(
        base=SimulationConfig(duration=duration),
        grid={"benchmark_name": ["gzip", "Web-med"], "cooling": ["Var", "Max"]},
        name=name,
    )


class TestStreamingRun:
    def test_rows_match_batch_runner(self):
        spec = small_spec()
        result = SweepRunner(spec).run()
        assert result.complete
        assert result.folded == result.n_runs == 4
        batch = BatchRunner([p.config for p in spec.iter_points()]).run()
        for row, run in zip(result.rows, batch.runs):
            assert row["run"] == run.index
            assert row["peak_temperature_sensor"] == run.result.peak_temperature()
            assert row["total_energy_j"] == run.result.total_energy()

    def test_parallel_folds_equal_serial(self):
        spec = small_spec()
        serial = SweepRunner(spec).run()
        parallel = SweepRunner(spec, max_workers=2).run()
        assert parallel.rows == serial.rows
        for agg_s, agg_p in zip(serial.aggregators, parallel.aggregators):
            assert agg_p.rows() == agg_s.rows()

    def test_chunked_execution_changes_nothing(self, tmp_path):
        """chunk_size bounds memory; folds/rows/exports are invariant."""
        spec = small_spec()
        whole = SweepRunner(spec, csv_path=tmp_path / "a.csv").run()
        chunked = SweepRunner(
            spec, csv_path=tmp_path / "b.csv", chunk_size=1
        ).run()
        assert chunked.rows == whole.rows
        assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()
        for agg_a, agg_b in zip(whole.aggregators, chunked.aggregators):
            assert agg_a.rows() == agg_b.rows()

    def test_resume_with_chunking_is_bit_identical(self, tmp_path):
        spec = small_spec()
        whole = SweepRunner(spec, csv_path=tmp_path / "a.csv").run()
        ck = tmp_path / "ck.jsonl"
        SweepRunner(
            spec, checkpoint=ck, csv_path=tmp_path / "b.csv",
            stop_after=3, chunk_size=2,
        ).run()
        resumed = SweepRunner(
            spec, checkpoint=ck, csv_path=tmp_path / "b.csv", chunk_size=2
        ).run(resume=True)
        assert resumed.complete and resumed.resumed == 3
        assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()
        assert resumed.rows == whole.rows

    def test_on_result_streams_in_index_order(self):
        spec = small_spec()
        seen = []
        SweepRunner(
            spec,
            aggregators=(),
            on_result=lambda point, result: seen.append(point.index),
        ).run()
        assert seen == [0, 1, 2, 3]

    def test_stop_after_folds_prefix_only(self, tmp_path):
        result = SweepRunner(
            small_spec(), checkpoint=tmp_path / "ck.jsonl", stop_after=2
        ).run()
        assert not result.complete
        assert result.folded == 2
        assert [row["run"] for row in result.rows] == [0, 1]

    def test_bad_later_axis_value_fails_before_any_run(self):
        spec = SweepSpec(
            base=SimulationConfig(duration=1.0),
            grid={"benchmark_name": ["gzip"], "layers": [2, 3]},
        )
        executed = []
        with pytest.raises(ConfigurationError, match="invalid"):
            SweepRunner(
                spec,
                aggregators=(),
                on_result=lambda p, r: executed.append(p.index),
            ).run()
        assert executed == []  # Nothing simulated before the failure.

    def test_iter_runs_streams_serially(self):
        spec = small_spec()
        runner = BatchRunner([p.config for p in spec.iter_points()])
        iterator = runner.iter_runs()
        first = next(iterator)
        assert first.index == 0  # Available before the batch finishes.
        iterator.close()  # Early close must not raise.


class TestCheckpointResume:
    def test_interrupt_at_half_then_resume_is_bit_identical(self, tmp_path):
        """The acceptance criterion: interrupted-at-50% == uninterrupted."""
        spec = small_spec()
        fresh_dir = tmp_path / "fresh"
        part_dir = tmp_path / "part"
        fresh_dir.mkdir()
        part_dir.mkdir()

        fresh = SweepRunner(spec, csv_path=fresh_dir / "out.csv").run()
        fresh.save_json(fresh_dir / "out.json")

        ck = part_dir / "ck.jsonl"
        first = SweepRunner(
            spec, checkpoint=ck, csv_path=part_dir / "out.csv", stop_after=2
        ).run()
        assert first.folded == 2
        second = SweepRunner(
            spec, checkpoint=ck, csv_path=part_dir / "out.csv"
        ).run(resume=True)
        assert second.complete
        assert second.resumed == 2
        second.save_json(part_dir / "out.json")

        assert (part_dir / "out.csv").read_bytes() == (
            fresh_dir / "out.csv"
        ).read_bytes()
        assert (part_dir / "out.json").read_bytes() == (
            fresh_dir / "out.json"
        ).read_bytes()
        # Aggregates are bit-equal too, not merely close.
        assert [a.rows() for a in second.aggregators] == [
            a.rows() for a in fresh.aggregators
        ]

    def test_resume_skips_finished_runs(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(), checkpoint=ck, stop_after=3).run()
        executed = []
        result = SweepRunner(
            small_spec(),
            checkpoint=ck,
            on_result=lambda p, r: executed.append(p.index),
        ).run(resume=True)
        assert result.complete
        assert executed == [3]  # Only the unfinished tail ran.

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(), checkpoint=ck, stop_after=2).run()
        with open(ck, "a") as handle:
            handle.write('{"kind": "run", "index": 2, "key": "tr')  # torn
        status = read_status(ck)
        assert status.folded == 2
        result = SweepRunner(small_spec(), checkpoint=ck).run(resume=True)
        assert result.complete

    def test_run_line_without_snapshot_is_rerun(self, tmp_path):
        """A kill between the run append and its snapshot loses at most
        that run; the resume recomputes it."""
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(), checkpoint=ck, stop_after=3).run()
        lines = ck.read_text().splitlines()
        assert json.loads(lines[-1])["kind"] == "snapshot"
        ck.write_text("\n".join(lines[:-1]) + "\n")  # Drop the last snapshot.
        executed = []
        result = SweepRunner(
            small_spec(),
            checkpoint=ck,
            on_result=lambda p, r: executed.append(p.index),
        ).run(resume=True)
        assert result.complete
        assert executed == [2, 3]

    def test_existing_checkpoint_without_resume_is_refused(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(), checkpoint=ck, stop_after=1).run()
        with pytest.raises(ConfigurationError, match="already exists"):
            SweepRunner(small_spec(), checkpoint=ck).run()

    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(), checkpoint=ck, stop_after=1).run()
        other = SweepSpec(
            base=SimulationConfig(duration=1.0),
            grid={"benchmark_name": ["Database"]},
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepRunner(other, checkpoint=ck).run(resume=True)

    def test_snapshot_every_reduces_journal_snapshots(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(), checkpoint=ck, snapshot_every=2).run()
        kinds = [json.loads(line)["kind"] for line in ck.read_text().splitlines()]
        assert kinds.count("snapshot") == 2  # After runs 2 and 4.

    def test_stop_after_snapshots_at_session_end(self, tmp_path):
        """A deliberate session end must not lose cleanly-folded runs
        to the snapshot cadence."""
        ck = tmp_path / "ck.jsonl"
        SweepRunner(
            small_spec(), checkpoint=ck, stop_after=3, snapshot_every=2
        ).run()
        assert read_status(ck).folded == 3  # Not 2.
        result = SweepRunner(
            small_spec(), checkpoint=ck, snapshot_every=2
        ).run(resume=True)
        assert result.resumed == 3

    def test_custom_aggregator_instances_survive_resume(self, tmp_path):
        class CompletedCounter(Aggregator):
            kind = "completed-counter"

            def __init__(self):
                self.total = 0

            def spec(self):
                return {"kind": self.kind}

            def update(self, config, result):
                self.total += result.total_completed()

            def state_dict(self):
                return {"total": self.total}

            def load_state(self, state):
                self.total = int(state["total"])

            def rows(self):
                return [{"total_completed": self.total}]

        spec = small_spec()
        reference = SweepRunner(spec, aggregators=[CompletedCounter()]).run()
        ck = tmp_path / "ck.jsonl"
        SweepRunner(
            spec, aggregators=[CompletedCounter()], checkpoint=ck, stop_after=2
        ).run()
        # The factory cannot build this kind; the caller's matching
        # instance must be kept and restored instead.
        resumed = SweepRunner(
            spec, aggregators=[CompletedCounter()], checkpoint=ck
        ).run(resume=True)
        assert resumed.complete
        assert isinstance(resumed.aggregators[0], CompletedCounter)
        assert resumed.aggregators[0].rows() == reference.aggregators[0].rows()

    def test_status_reports_progress(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        SweepRunner(small_spec(name="statussweep"), checkpoint=ck, stop_after=2).run()
        status = read_status(ck)
        assert status.name == "statussweep"
        assert (status.folded, status.n_runs, status.remaining) == (2, 4, 2)
        assert status.pct == pytest.approx(50.0)
        assert status.last_key.startswith("00001")


class TestAggregateCorrectness:
    def test_scalar_aggregates_match_direct_computation(self):
        spec = small_spec()
        result = SweepRunner(spec).run()
        batch = BatchRunner([p.config for p in spec.iter_points()]).run()
        scalar_rows = {
            row["label"]: row for row in result.aggregators[0].rows()
        }
        for label in ("TALB (Var)", "TALB (Max)"):
            expected = np.mean(
                [
                    run.result.peak_temperature()
                    for run in batch.runs
                    if run.config.label() == label
                ]
            )
            assert scalar_rows[label]["peak_temperature_mean"] == pytest.approx(
                expected
            )
            assert scalar_rows[label]["runs"] == 2
