"""Histogram and P² quantile sketches: accuracy, JSON state, exact merge."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    HistogramAggregator,
    P2Quantile,
    QuantileAggregator,
    aggregator_from_spec,
)
from repro.sweep.aggregate import quantile_column


class TestP2Quantile:
    def test_empty_is_nan(self):
        import math

        assert math.isnan(P2Quantile(0.5).value())

    def test_small_streams_are_exact_interpolation(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.add(value)
        assert estimator.value() == 2.0

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9, 0.95])
    def test_tracks_numpy_percentile(self, p):
        rng = np.random.default_rng(7)
        values = rng.normal(75.0, 8.0, size=5000)
        estimator = P2Quantile(p)
        for value in values:
            estimator.add(float(value))
        exact = float(np.percentile(values, 100.0 * p))
        spread = float(values.std())
        assert abs(estimator.value() - exact) < 0.05 * spread

    def test_state_round_trip_is_bit_identical(self):
        """Restoring mid-stream then continuing equals never stopping."""
        rng = np.random.default_rng(11)
        values = [float(v) for v in rng.uniform(60, 90, size=200)]
        whole = P2Quantile(0.9)
        for value in values:
            whole.add(value)
        first = P2Quantile(0.9)
        for value in values[:80]:
            first.add(value)
        restored = P2Quantile.from_state(
            json.loads(json.dumps(first.state_dict()))
        )
        for value in values[80:]:
            restored.add(value)
        assert restored.value() == whole.value()
        assert restored.state_dict() == whole.state_dict()

    def test_nan_is_skipped(self):
        estimator = P2Quantile(0.5)
        estimator.add(float("nan"))
        assert estimator.count == 0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(1.5)


class TestQuantileColumn:
    def test_names(self):
        assert quantile_column(0.5) == "p50"
        assert quantile_column(0.95) == "p95"
        assert quantile_column(0.999) == "p99.9"


class TestHistogramAggregator:
    def _fold(self, agg, pairs):
        for group, value in pairs:
            agg.update_payload({"group": group, "value": value})

    def test_bins_and_edges(self):
        agg = HistogramAggregator(lo=0.0, hi=10.0, bins=5, group_by=())
        self._fold(agg, [("all", v) for v in (0.0, 1.9, 2.0, 9.99, 10.0)])
        by_bin = {row["bin"]: row for row in agg.rows()}
        assert by_bin[0]["count"] == 2   # 0.0 and 1.9
        assert by_bin[1]["count"] == 1   # 2.0
        assert by_bin[4]["count"] == 2   # 9.99 and the hi-edge value 10.0
        assert by_bin[0]["lo"] == 0.0 and by_bin[0]["hi"] == 2.0

    def test_underflow_overflow_rows(self):
        agg = HistogramAggregator(lo=0.0, hi=10.0, bins=5, group_by=())
        self._fold(agg, [("all", -1.0), ("all", 11.0), ("all", 5.0)])
        bins = [row["bin"] for row in agg.rows()]
        assert -1 in bins and 5 in bins
        total = sum(row["count"] for row in agg.rows())
        assert total == 3

    def test_nan_observations_are_counted_not_dropped(self):
        """Every folded run lands somewhere: bins, under/overflow, or
        the NaN pseudo-bin — counts always sum to the fold count."""
        agg = HistogramAggregator(lo=0.0, hi=10.0, bins=5, group_by=())
        self._fold(agg, [("all", 5.0), ("all", float("nan")), ("all", float("nan"))])
        by_bin = {row["bin"]: row for row in agg.rows()}
        assert by_bin[None]["count"] == 2
        assert sum(row["count"] for row in agg.rows()) == 3

    def test_state_round_trips_through_json(self):
        agg = HistogramAggregator(lo=0.0, hi=10.0, bins=4, group_by=())
        self._fold(agg, [("all", v) for v in (1.0, 3.0, 3.5, 12.0)])
        clone = aggregator_from_spec(json.loads(json.dumps(agg.spec())))
        clone.load_state(json.loads(json.dumps(agg.state_dict())))
        assert clone.rows() == agg.rows()

    def test_merge_is_exact(self):
        """Counts add, so shard histograms merge without replay."""
        whole = HistogramAggregator(lo=0.0, hi=10.0, bins=4, group_by=())
        left = HistogramAggregator(lo=0.0, hi=10.0, bins=4, group_by=())
        right = HistogramAggregator(lo=0.0, hi=10.0, bins=4, group_by=())
        values = [0.5, 2.5, 2.6, 7.0, 9.0, -3.0, 14.0]
        self._fold(whole, [("all", v) for v in values])
        self._fold(left, [("all", v) for v in values[:3]])
        self._fold(right, [("all", v) for v in values[3:]])
        left.merge(right)
        assert left.rows() == whole.rows()
        assert left.state_dict() == whole.state_dict()

    def test_merge_requires_matching_spec(self):
        a = HistogramAggregator(lo=0.0, hi=10.0, bins=4)
        b = HistogramAggregator(lo=0.0, hi=10.0, bins=8)
        with pytest.raises(ConfigurationError, match="identical specs"):
            a.merge(b)

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            HistogramAggregator(metric="nope")
        with pytest.raises(ConfigurationError, match="lo < hi"):
            HistogramAggregator(lo=5.0, hi=5.0)
        with pytest.raises(ConfigurationError, match="bin"):
            HistogramAggregator(bins=0)


class TestQuantileAggregator:
    def test_rows_report_requested_quantiles(self):
        agg = QuantileAggregator(
            metric="peak_temperature", quantiles=(0.5, 0.9), group_by=()
        )
        for value in (70.0, 80.0, 90.0):
            agg.update_payload({"group": "all", "value": value})
        (row,) = agg.rows()
        assert row["runs"] == 3
        assert row["p50"] == 80.0
        assert row["p90"] == pytest.approx(88.0)

    def test_state_round_trips_through_json(self):
        agg = QuantileAggregator(group_by=())
        rng = np.random.default_rng(3)
        for value in rng.uniform(60, 90, size=50):
            agg.update_payload({"group": "all", "value": float(value)})
        clone = aggregator_from_spec(json.loads(json.dumps(agg.spec())))
        clone.load_state(json.loads(json.dumps(agg.state_dict())))
        assert clone.rows() == agg.rows()

    def test_replay_merge_is_bit_identical(self):
        """Sharded payload replay in run order == one-shot folding (the
        exactness property the distributed merger relies on)."""
        rng = np.random.default_rng(5)
        payloads = [
            {"group": "g", "value": float(v)}
            for v in rng.uniform(60, 90, size=100)
        ]
        whole = QuantileAggregator(group_by=())
        replayed = QuantileAggregator(group_by=())
        for payload in payloads:
            whole.update_payload(payload)
        for shard in (payloads[:37], payloads[37:70], payloads[70:]):
            for payload in shard:
                replayed.update_payload(payload)
        assert replayed.state_dict() == whole.state_dict()
        assert replayed.rows() == whole.rows()

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            QuantileAggregator(metric="nope")
        with pytest.raises(ConfigurationError, match="at least one"):
            QuantileAggregator(quantiles=())
        with pytest.raises(ConfigurationError, match="in \\(0, 1\\)"):
            QuantileAggregator(quantiles=(2.0,))
