"""Registry keys + component params through specs and fingerprints.

The satellite acceptance property: a registry-keyed, parameterized
campaign declaration round-trips losslessly — enum and key spellings
fingerprint identically, dotted ``*_params`` axes expand and serialize,
and configs that never touch the new fields keep their pre-registry
signatures (so old checkpoints stay resumable).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import ControllerKind, PolicyKind, SimulationConfig
from repro.sweep import SweepSpec
from repro.sweep.spec import config_signature


class TestKeyNormalization:
    def test_enum_and_key_spellings_fingerprint_identically(self):
        def spec(policy, controller):
            return SweepSpec(
                base=SimulationConfig(
                    policy=policy, controller=controller, duration=2.0
                ),
                grid={"benchmark_name": ["gzip"]},
            )
        enums = spec(PolicyKind.TALB, ControllerKind.STEPWISE)
        keys = spec("talb", "step")
        assert enums.fingerprint() == keys.fingerprint()

    def test_axis_values_normalize_to_canonical_keys(self):
        spec = SweepSpec(grid={"policy": ["lb", PolicyKind.TALB, "rr"]})
        assert [p.config.policy for p in spec.iter_points()] == [
            "LB", "TALB", "RR"
        ]

    def test_unknown_axis_key_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            SweepSpec(grid={"policy": ["FIFO"]})


class TestParamsAxes:
    def test_dotted_controller_params_axis(self):
        spec = SweepSpec(
            base=SimulationConfig(controller="pid", duration=2.0),
            grid={"controller_params.kp": [0.5, 1.0, 2.0]},
        )
        kps = [p.config.controller_params["kp"] for p in spec.iter_points()]
        assert kps == [0.5, 1.0, 2.0]
        assert spec.run_count == 3

    def test_dotted_axis_merges_with_base_params(self):
        spec = SweepSpec(
            base=SimulationConfig(
                controller="pid",
                controller_params={"kd": 1.0},
                duration=2.0,
            ),
            grid={"controller_params.kp": [2.0]},
        )
        point = next(spec.iter_points())
        assert dict(point.config.controller_params) == {"kd": 1.0, "kp": 2.0}

    def test_whole_params_mapping_point(self):
        spec = SweepSpec(
            base=SimulationConfig(duration=2.0),
            points=[
                {"controller": "pid", "controller_params": {"kp": 0.75}},
                {"controller": "stepwise"},
            ],
        )
        points = list(spec.iter_points())
        assert points[0].config.controller_params == {"kp": 0.75}
        assert points[1].config.controller_params == {}

    def test_bad_param_name_caught_by_validate_all(self):
        # Position 0 is clean, so declaration succeeds...
        spec = SweepSpec(
            base=SimulationConfig(controller="pid", duration=2.0),
            zip_axes={"controller": ["pid", "stepwise"],
                      "controller_params.kp": [1.0, 1.0]},
        )
        # ...but stepwise has no kp, which the full walk names.
        with pytest.raises(ConfigurationError, match="no parameter 'kp'"):
            spec.validate_all()

    def test_policy_params_axis_for_registered_policy(self):
        spec = SweepSpec(
            base=SimulationConfig(policy="Mig", duration=2.0),
            grid={"policy_params.penalty": [0.0, 0.02]},
        )
        penalties = [p.config.policy_params["penalty"] for p in spec.iter_points()]
        assert penalties == [0.0, 0.02]

    def test_point_keys_render_params_canonically(self):
        spec = SweepSpec(
            base=SimulationConfig(duration=2.0),
            points=[{"controller": "pid",
                     "controller_params": {"kp": 1.0, "kd": 0.5}}],
        )
        key = next(spec.iter_points()).key
        assert 'controller_params={"kd":0.5,"kp":1.0}' in key

    def test_malformed_dotted_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="expected"):
            SweepSpec(grid={"controller_params.a.b": [1.0]})
        with pytest.raises(ConfigurationError, match="mapping"):
            SweepSpec(points=[{"policy_params": 3.0}])


class TestSerializationRoundTrip:
    def _spec(self):
        return SweepSpec(
            base=SimulationConfig(
                policy="TALB", controller="pid",
                controller_params={"ki": 0.1}, duration=2.0,
            ),
            grid={"controller_params.kp": [0.5, 2.0]},
            points=[{"benchmark_name": "gzip"}, {"benchmark_name": "Web-med"}],
            name="pid-study",
        )

    def test_dict_round_trip_preserves_fingerprint_and_keys(self):
        spec = self._spec()
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.fingerprint() == spec.fingerprint()
        assert [p.key for p in clone.iter_points()] == [
            p.key for p in spec.iter_points()
        ]
        assert [dict(p.config.controller_params) for p in clone.iter_points()] == [
            dict(p.config.controller_params) for p in spec.iter_points()
        ]

    def test_spec_file_with_params(self, tmp_path):
        path = tmp_path / "pid.json"
        path.write_text(json.dumps({
            "base": {"duration": 2.0, "controller": "pid",
                     "controller_params": {"kd": 1.0}},
            "grid": {"controller_params.kp": [1.0, 2.0]},
        }))
        spec = SweepSpec.from_file(path)
        assert spec.run_count == 2
        first = next(spec.iter_points())
        assert dict(first.config.controller_params) == {"kd": 1.0, "kp": 1.0}


class TestSignatureBackCompat:
    def test_default_registry_fields_omitted_from_signature(self):
        """Configs that never touch the registry-era fields keep their
        pre-registry signature payload — old fingerprints stay valid."""
        signature = config_signature(SimulationConfig(duration=2.0))
        for absent in ("policy_params", "controller_params",
                       "forecaster", "forecaster_params"):
            assert absent not in signature
        assert signature["policy"] == "TALB"
        assert signature["controller"] == "lut"

    def test_non_default_registry_fields_are_captured(self):
        signature = config_signature(SimulationConfig(
            controller="pid", controller_params={"kp": 1.0},
            forecaster="persistence", duration=2.0,
        ))
        assert signature["controller_params"] == {"kp": 1.0}
        assert signature["forecaster"] == "persistence"
        assert "policy_params" not in signature

    def test_param_spelling_does_not_change_identity(self):
        """kp=1 and kp=1.0 are the same run, so the same fingerprint."""
        def fp(value):
            return SweepSpec(
                base=SimulationConfig(
                    controller="pid", controller_params={"kp": value},
                    duration=2.0,
                ),
                grid={"benchmark_name": ["gzip"]},
            ).fingerprint()
        assert fp(1) == fp(1.0)
