"""Streaming aggregators: reduction math and lossless state round-trip."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.config import CoolingMode, PolicyKind, SimulationConfig
from repro.sim.engine import simulate
from repro.sweep import (
    CellAggregator,
    MomentsAggregator,
    RunningStats,
    ScalarAggregator,
    WelfordMoments,
    aggregator_from_spec,
    default_aggregators,
)


@pytest.fixture(scope="module")
def runs():
    """Three tiny runs spanning two policy labels."""
    configs = [
        SimulationConfig(benchmark_name="gzip", policy=PolicyKind.TALB,
                         cooling=CoolingMode.LIQUID_VARIABLE, duration=1.0, seed=1),
        SimulationConfig(benchmark_name="Web-med", policy=PolicyKind.TALB,
                         cooling=CoolingMode.LIQUID_VARIABLE, duration=1.0, seed=2),
        SimulationConfig(benchmark_name="gzip", policy=PolicyKind.LB,
                         cooling=CoolingMode.AIR, duration=1.0, seed=3),
    ]
    return [(config, simulate(config)) for config in configs]


class TestRunningStats:
    def test_count_mean_min_max(self):
        stats = RunningStats()
        for v in (2.0, 4.0, 9.0):
            stats.add(v)
        assert stats.count == 3
        assert stats.mean == pytest.approx(5.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_nan_values_are_skipped(self):
        stats = RunningStats()
        stats.add(float("nan"))
        stats.add(1.0)
        assert stats.count == 1
        assert stats.mean == 1.0

    def test_empty_mean_is_nan(self):
        assert np.isnan(RunningStats().mean)

    def test_state_round_trip_is_exact(self):
        stats = RunningStats()
        for v in (0.1, 0.2, 0.30000000000000004):
            stats.add(v)
        restored = RunningStats.from_state(
            json.loads(json.dumps(stats.state_dict()))
        )
        assert restored.total == stats.total  # bit-equal, not approx
        assert restored.count == stats.count
        assert restored.minimum == stats.minimum
        assert restored.maximum == stats.maximum


class TestScalarAggregator:
    def test_groups_by_label(self, runs):
        agg = ScalarAggregator(metrics=("peak_temperature", "total_energy_j"))
        for config, result in runs:
            agg.update(config, result)
        rows = {row["label"]: row for row in agg.rows()}
        assert set(rows) == {"TALB (Var)", "LB (Air)"}
        assert rows["TALB (Var)"]["runs"] == 2
        expected = np.mean(
            [r.peak_temperature() for c, r in runs if c.policy == "TALB"]
        )
        assert rows["TALB (Var)"]["peak_temperature_mean"] == pytest.approx(expected)

    def test_group_by_benchmark(self, runs):
        agg = ScalarAggregator(
            metrics=("chip_energy_j",), group_by=("benchmark",)
        )
        for config, result in runs:
            agg.update(config, result)
        rows = {row["benchmark"]: row for row in agg.rows()}
        assert rows["gzip"]["runs"] == 2
        assert rows["Web-med"]["runs"] == 1

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown metrics"):
            ScalarAggregator(metrics=("nope",))

    def test_state_round_trip_preserves_rows_exactly(self, runs):
        agg = ScalarAggregator()
        for config, result in runs:
            agg.update(config, result)
        clone = aggregator_from_spec(agg.spec())
        clone.load_state(json.loads(json.dumps(agg.state_dict())))
        assert clone.rows() == agg.rows()

    def test_mid_stream_restore_matches_uninterrupted(self, runs):
        full = ScalarAggregator()
        for config, result in runs:
            full.update(config, result)
        half = ScalarAggregator()
        half.update(*runs[0])
        restored = aggregator_from_spec(half.spec())
        restored.load_state(json.loads(json.dumps(half.state_dict())))
        for config, result in runs[1:]:
            restored.update(config, result)
        assert restored.rows() == full.rows()  # bit-equal sums


class TestCellAggregator:
    def test_tracks_per_unit_extremes(self, runs):
        agg = CellAggregator()
        for config, result in runs:
            agg.update(config, result)
        rows = {row["unit"]: row for row in agg.rows()}
        config, result = runs[0]
        name = result.unit_names[0]
        assert rows[name]["runs"] == len(runs)
        peaks = [r.unit_temperatures[:, 0].max() for _, r in runs]
        assert rows[name]["peak_temperature"] == pytest.approx(max(peaks))

    def test_state_round_trip(self, runs):
        agg = CellAggregator()
        for config, result in runs:
            agg.update(config, result)
        clone = CellAggregator()
        clone.load_state(json.loads(json.dumps(agg.state_dict())))
        assert clone.rows() == agg.rows()


class TestWelfordMoments:
    def test_matches_numpy_mean_and_sample_variance(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        moments = WelfordMoments()
        for v in values:
            moments.add(v)
        assert moments.count == len(values)
        assert moments.mean == pytest.approx(np.mean(values))
        assert moments.variance == pytest.approx(np.var(values, ddof=1))
        assert moments.std == pytest.approx(np.std(values, ddof=1))

    def test_nan_values_are_skipped(self):
        moments = WelfordMoments()
        moments.add(float("nan"))
        moments.add(3.0)
        assert moments.count == 1
        assert moments.mean == 3.0

    def test_variance_undefined_below_two_observations(self):
        moments = WelfordMoments()
        assert np.isnan(moments.variance)
        moments.add(1.0)
        assert np.isnan(moments.variance)
        moments.add(2.0)
        assert moments.variance == pytest.approx(0.5)

    def test_state_round_trip_is_exact(self):
        moments = WelfordMoments()
        for v in (0.1, 0.2, 0.30000000000000004, 7.7):
            moments.add(v)
        restored = WelfordMoments.from_state(
            json.loads(json.dumps(moments.state_dict()))
        )
        assert restored.count == moments.count
        assert restored.mean == moments.mean  # bit-equal, not approx
        assert restored.m2 == moments.m2


class TestMomentsAggregator:
    def test_groups_by_label_and_matches_numpy(self, runs):
        agg = MomentsAggregator(metrics=("peak_temperature",))
        for config, result in runs:
            agg.update(config, result)
        rows = {row["label"]: row for row in agg.rows()}
        assert set(rows) == {"TALB (Var)", "LB (Air)"}
        talb = [r.peak_temperature() for c, r in runs if c.policy == "TALB"]
        assert rows["TALB (Var)"]["runs"] == 2
        assert rows["TALB (Var)"]["peak_temperature_mean"] == pytest.approx(
            np.mean(talb)
        )
        assert rows["TALB (Var)"]["peak_temperature_var"] == pytest.approx(
            np.var(talb, ddof=1)
        )

    def test_single_run_groups_render_none_not_nan(self, runs):
        agg = MomentsAggregator(metrics=("chip_energy_j",))
        agg.update(*runs[2])  # The lone LB (Air) run.
        (row,) = agg.rows()
        assert row["runs"] == 1
        assert row["chip_energy_j_var"] is None
        assert row["chip_energy_j_std"] is None

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown metrics"):
            MomentsAggregator(metrics=("nope",))

    def test_mid_stream_restore_matches_uninterrupted(self, runs):
        """The checkpoint/resume contract: journal state mid-stream,
        restore, finish folding — bit-equal rows."""
        full = MomentsAggregator()
        for config, result in runs:
            full.update(config, result)
        half = MomentsAggregator()
        half.update(*runs[0])
        restored = aggregator_from_spec(half.spec())
        restored.load_state(json.loads(json.dumps(half.state_dict())))
        for config, result in runs[1:]:
            restored.update(config, result)
        assert restored.rows() == full.rows()

    def test_fold_update_split_replays_exactly(self, runs):
        """Distributed merge replays journaled fold payloads in run
        order; the result must equal direct folding bit-for-bit."""
        direct = MomentsAggregator()
        journal = []
        for config, result in runs:
            payload = direct.fold_payload(config, result)
            direct.update_payload(payload)
            journal.append(json.loads(json.dumps(payload)))
        replayed = MomentsAggregator()
        for payload in journal:
            replayed.update_payload(payload)
        assert replayed.rows() == direct.rows()
        assert replayed.state_dict() == direct.state_dict()


class TestFactory:
    def test_default_set(self):
        kinds = [agg.kind for agg in default_aggregators()]
        assert kinds == [
            "scalar", "cells", "histogram", "quantile", "moments", "histogram",
        ]
        # The second histogram is the data-driven energy sketch.
        energy = default_aggregators()[-1]
        assert energy.metric == "total_energy_j"
        assert energy.auto_range

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown aggregator"):
            aggregator_from_spec({"kind": "nope"})

    def test_spec_round_trip(self):
        agg = ScalarAggregator(metrics=("migrations",), group_by=("benchmark",))
        clone = aggregator_from_spec(json.loads(json.dumps(agg.spec())))
        assert clone.metrics == ("migrations",)
        assert clone.group_by == ("benchmark",)
