"""Data-driven (auto-range) histogram: determinism, resume, rendering."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sweep.aggregate import HistogramAggregator, aggregator_from_spec


def _auto(warmup=4, bins=8):
    return HistogramAggregator(
        metric="total_energy_j", lo=None, hi=None, bins=bins, warmup=warmup
    )


def _feed(agg, values, group="g"):
    for value in values:
        agg.update_payload({"group": group, "value": value})


class TestRangeDerivation:
    def test_range_freezes_after_warmup_and_covers_the_data(self):
        agg = _auto(warmup=4)
        _feed(agg, [10.0, 30.0, 20.0, 40.0])
        assert agg.frozen
        # 5% padding each side of [10, 40].
        assert agg.lo == pytest.approx(8.5)
        assert agg.hi == pytest.approx(41.5)
        assert sum(r["count"] for r in agg.rows()) == 4

    def test_not_frozen_before_warmup(self):
        agg = _auto(warmup=10)
        _feed(agg, [10.0, 30.0])
        assert not agg.frozen
        # Rows still render, with a provisional range.
        rows = agg.rows()
        assert sum(r["count"] for r in rows) == 2
        # Rendering does not mutate state.
        assert not agg.frozen
        assert agg.rows() == rows

    def test_zero_span_warmup_gets_nonzero_bins(self):
        agg = _auto(warmup=3)
        _feed(agg, [5.0, 5.0, 5.0])
        assert agg.frozen and agg.lo < 5.0 < agg.hi

    def test_post_freeze_outliers_hit_overflow(self):
        agg = _auto(warmup=2)
        _feed(agg, [10.0, 20.0])
        _feed(agg, [1000.0])
        overflow = [r for r in agg.rows() if r["hi"] is None and r["bin"] is not None]
        assert overflow and overflow[0]["count"] == 1

    def test_infinities_counted_not_buffered(self):
        """inf must never enter the range derivation — one divergent
        energy value must not crash (or stretch) a whole campaign."""
        agg = _auto(warmup=3)
        _feed(agg, [10.0, float("inf"), float("-inf"), 20.0, 30.0])
        assert agg.frozen
        assert agg.hi < float("inf")
        rows = agg.rows()
        assert [r["count"] for r in rows if r["lo"] is None and r["bin"] == -1] == [1]
        assert [r["count"] for r in rows if r["hi"] is None and r["bin"] is not None] == [1]
        assert sum(r["count"] for r in rows) == 5

    def test_nan_counted_not_buffered(self):
        agg = _auto(warmup=2)
        _feed(agg, [float("nan"), 10.0])
        assert not agg.frozen  # Only one finite value so far.
        nan_rows = [r for r in agg.rows() if r["bin"] is None]
        assert nan_rows and nan_rows[0]["count"] == 1

    def test_empty_rows(self):
        assert _auto().rows() == []


class TestDeterminism:
    def test_replay_reproduces_rows_exactly(self):
        values = [3.0, 9.0, 4.5, 8.0, 2.5, 11.0, 7.0]
        a, b = _auto(warmup=4), _auto(warmup=4)
        _feed(a, values)
        _feed(b, values)
        assert a.rows() == b.rows()
        assert (a.lo, a.hi) == (b.lo, b.hi)

    def test_mid_stream_state_restore_matches_uninterrupted(self):
        """The checkpoint/resume property, through the warm-up boundary."""
        values = [3.0, 9.0, 4.5, 8.0, 2.5, 11.0, 7.0]
        for cut in range(len(values)):
            full = _auto(warmup=4)
            _feed(full, values)
            head = _auto(warmup=4)
            _feed(head, values[:cut])
            restored = aggregator_from_spec(head.spec())
            restored.load_state(json.loads(json.dumps(head.state_dict())))
            _feed(restored, values[cut:])
            assert restored.rows() == full.rows(), f"cut at {cut}"

    def test_spec_round_trip(self):
        agg = _auto(warmup=7, bins=12)
        clone = aggregator_from_spec(json.loads(json.dumps(agg.spec())))
        assert clone.auto_range
        assert clone.warmup == 7
        assert clone.bins == 12
        assert clone.metric == "total_energy_j"


class TestValidation:
    def test_half_explicit_range_rejected(self):
        with pytest.raises(ConfigurationError, match="both"):
            HistogramAggregator(lo=None, hi=10.0)
        with pytest.raises(ConfigurationError, match="both"):
            HistogramAggregator(lo=0.0, hi=None)

    def test_bad_warmup_rejected(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            _auto(warmup=0)

    def test_state_merge_refused_for_auto_range(self):
        a, b = _auto(), _auto()
        with pytest.raises(ConfigurationError, match="replay"):
            a.merge(b)

    def test_explicit_range_merge_still_exact(self):
        a = HistogramAggregator(lo=0.0, hi=10.0, bins=5)
        b = HistogramAggregator(lo=0.0, hi=10.0, bins=5)
        _feed(a, [1.0, 2.0])
        _feed(b, [2.0, 9.0])
        a.merge(b)
        assert sum(r["count"] for r in a.rows()) == 4
