"""Sweep spec: expansion semantics, coercion, identity, serialization."""

import itertools
import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import (
    ControllerKind,
    CoolingMode,
    PolicyKind,
    SimulationConfig,
)
from repro.sweep import SweepSpec


class TestExpansion:
    def test_grid_is_cross_product_last_axis_fastest(self):
        spec = SweepSpec(
            grid={"benchmark_name": ["gzip", "Web-med"], "cooling": ["Var", "Max"]}
        )
        combos = [
            (p.config.benchmark_name, p.config.cooling.value)
            for p in spec.iter_points()
        ]
        assert combos == [
            ("gzip", "Var"), ("gzip", "Max"),
            ("Web-med", "Var"), ("Web-med", "Max"),
        ]
        assert spec.run_count == 4

    def test_zip_axes_advance_together(self):
        spec = SweepSpec(
            zip_axes={"forecast_enabled": [True, False], "hysteresis": [2.0, 0.0]}
        )
        rows = [
            (p.config.forecast_enabled, p.config.hysteresis)
            for p in spec.iter_points()
        ]
        assert rows == [(True, 2.0), (False, 0.0)]

    def test_points_cross_zip_cross_grid(self):
        spec = SweepSpec(
            points=[{"policy": "LB"}, {"policy": "TALB"}],
            zip_axes={"seed": [1, 2]},
            grid={"benchmark_name": ["gzip", "Database", "MPlayer"]},
        )
        assert spec.run_count == 2 * 2 * 3
        points = list(spec.iter_points())
        assert len(points) == 12
        # Outermost axis is the points list. Policies normalize to
        # canonical registry keys.
        assert points[0].config.policy == "LB"
        assert points[-1].config.policy == "TALB"

    def test_indices_and_keys_are_stable(self):
        spec = SweepSpec(grid={"benchmark_name": ["gzip", "Web-med"]})
        points = list(spec.iter_points())
        assert [p.index for p in points] == [0, 1]
        assert points[0].key.startswith("00000 ")
        assert "benchmark_name=gzip" in points[0].key
        # Two expansions produce identical keys.
        assert [p.key for p in spec.iter_points()] == [p.key for p in points]

    def test_expansion_is_lazy(self):
        spec = SweepSpec(grid={"seed": list(range(100_000))})
        assert spec.run_count == 100_000
        first_three = list(itertools.islice(spec.iter_points(), 3))
        assert [p.config.seed for p in first_three] == [0, 1, 2]

    def test_reseed_gives_distinct_seeds_per_index(self):
        spec = SweepSpec(
            grid={"benchmark_name": ["gzip", "Web-med"]}, reseed=100
        )
        assert [p.config.seed for p in spec.iter_points()] == [100, 101]

    def test_reseed_with_seed_axis_rejected(self):
        # reseed would silently overwrite the declared seeds otherwise.
        with pytest.raises(ConfigurationError, match="reseed"):
            SweepSpec(grid={"seed": [101, 202]}, reseed=0)
        with pytest.raises(ConfigurationError, match="reseed"):
            SweepSpec(points=[{"seed": 7}], reseed=0)

    def test_whole_thermal_params_mapping_coerces(self):
        spec = SweepSpec(
            points=[{"thermal_params": {"inlet_temperature": 45.0}}],
        )
        point = next(spec.iter_points())
        assert point.config.thermal_params.inlet_temperature == 45.0
        # The coerced value is a real ThermalParams (hashable), so the
        # engine's cache keys work.
        hash(point.config)

    def test_whole_thermal_params_bad_field_rejected(self):
        with pytest.raises(ConfigurationError, match="thermal_params fields"):
            SweepSpec(points=[{"thermal_params": {"not_a_field": 1.0}}])

    def test_whole_thermal_params_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            SweepSpec(points=[{"thermal_params": 60.0}])

    def test_dotted_thermal_params_axis(self):
        spec = SweepSpec(
            grid={"thermal_params.inlet_temperature": [45.0, 60.0]}
        )
        inlets = [
            p.config.thermal_params.inlet_temperature for p in spec.iter_points()
        ]
        assert inlets == [45.0, 60.0]
        # Other thermal params keep base values.
        base = SimulationConfig().thermal_params
        for p in spec.iter_points():
            assert p.config.thermal_params.k_silicon == base.k_silicon


class TestCoercionAndValidation:
    def test_aliases_and_enum_strings(self):
        spec = SweepSpec(
            points=[{"benchmark": "gzip", "layers": 4, "dpm": True}],
            grid={"cooling": ["Var"], "controller": ["stepwise"]},
        )
        point = next(spec.iter_points())
        assert point.config.benchmark_name == "gzip"
        assert point.config.n_layers == 4
        assert point.config.dpm_enabled is True
        assert point.config.cooling is CoolingMode.LIQUID_VARIABLE
        assert point.config.controller == ControllerKind.STEPWISE.value

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep field"):
            SweepSpec(grid={"not_a_field": [1]})

    def test_bad_enum_value_rejected(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            SweepSpec(grid={"policy": ["FIFO"]})

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="share one length"):
            SweepSpec(zip_axes={"seed": [1, 2], "hysteresis": [0.0]})

    def test_grid_zip_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="both grid and zip"):
            SweepSpec(grid={"seed": [1]}, zip_axes={"seed": [2]})

    def test_point_axis_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="also swept"):
            SweepSpec(points=[{"seed": 1}], grid={"seed": [2]})

    def test_alias_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            SweepSpec(grid={"benchmark": ["gzip"], "benchmark_name": ["gzip"]})

    def test_bad_config_value_fails_at_declaration(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={"n_layers": [3]})  # only 2 or 4 are valid

    def test_validate_all_catches_bad_later_positions(self):
        # Position 0 (n_layers=2) is fine, so declaration succeeds...
        spec = SweepSpec(grid={"layers": [2, 3]})
        # ...but the full walk names the offending point.
        with pytest.raises(ConfigurationError, match="00001.*n_layers"):
            spec.validate_all()

    def test_validate_all_passes_valid_spec(self):
        SweepSpec(grid={"layers": [2, 4]}).validate_all()

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            SweepSpec(grid={"seed": []})


class TestIdentityAndSerialization:
    def test_fingerprint_stable_and_discriminating(self):
        def make():
            return SweepSpec(
                base=SimulationConfig(duration=2.0),
                grid={"benchmark_name": ["gzip", "Web-med"]},
                name="a",
            )
        assert make().fingerprint() == make().fingerprint()
        # The name is a label, not an identity.
        other_name = SweepSpec(
            base=SimulationConfig(duration=2.0),
            grid={"benchmark_name": ["gzip", "Web-med"]},
            name="b",
        )
        assert other_name.fingerprint() == make().fingerprint()
        different = SweepSpec(
            base=SimulationConfig(duration=2.0),
            grid={"benchmark_name": ["gzip", "Database"]},
        )
        assert different.fingerprint() != make().fingerprint()

    def test_dict_round_trip(self):
        spec = SweepSpec(
            base=SimulationConfig(duration=3.0, policy=PolicyKind.LB),
            grid={"benchmark_name": ["gzip"]},
            zip_axes={"hysteresis": [1.0]},
            points=[{"cooling": "Max"}],
            reseed=7,
            name="rt",
        )
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.fingerprint() == spec.fingerprint()
        assert [p.key for p in clone.iter_points()] == [
            p.key for p in spec.iter_points()
        ]

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "base": {"duration": 2.0},
            "grid": {"benchmark": ["gzip"], "cooling": ["Var", "Max"]},
        }))
        spec = SweepSpec.from_file(path)
        assert spec.run_count == 2
        assert spec.name == "spec"  # Defaults to the file stem.
        assert spec.base.duration == 2.0

    def test_from_file_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        del yaml
        path = tmp_path / "spec.yaml"
        path.write_text(
            "base:\n  duration: 2.0\ngrid:\n  benchmark: [gzip, Web-med]\n"
        )
        spec = SweepSpec.from_file(path)
        assert spec.run_count == 2

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"grids": {"seed": [1]}})
