"""The ``solver`` config axis: signatures, sweeps, neighbor cohorts."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import cohort_signature, group_cohorts, structural_signature
from repro.sim.config import SimulationConfig
from repro.sweep import SweepSpec
from repro.sweep.spec import config_signature
from repro.thermal.rc_network import ThermalParams


class TestSolverSignature:
    def test_default_solver_omitted_from_signature(self):
        # Pre-solver fingerprints, checkpoints, and dist ledgers must
        # keep validating, so the default tier never appears.
        assert "solver" not in config_signature(SimulationConfig())

    def test_krylov_solver_recorded_in_signature(self):
        signature = config_signature(SimulationConfig(solver="krylov"))
        assert signature["solver"] == "krylov"

    def test_fingerprint_discriminates_solver(self):
        exact = SweepSpec(base=SimulationConfig(duration=2.0))
        krylov = SweepSpec(base=SimulationConfig(duration=2.0, solver="krylov"))
        assert exact.fingerprint() != krylov.fingerprint()


class TestSolverAxis:
    def test_solver_is_sweepable(self):
        spec = SweepSpec(grid={"solver": ["exact", "krylov"]})
        points = list(spec.iter_points())
        assert [p.config.solver for p in points] == ["exact", "krylov"]
        assert "solver=krylov" in points[1].key

    def test_bad_solver_rejected_at_declaration(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={"solver": ["superlu"]})

    def test_validate_all_names_bad_later_solver(self):
        spec = SweepSpec(grid={"solver": ["exact", "superlu"]})
        with pytest.raises(ConfigurationError, match="solver"):
            spec.validate_all()


def _configs(solver, scales=(4.0, 4.4)):
    return [
        SimulationConfig(
            duration=2.0,
            solver=solver,
            thermal_params=ThermalParams(resistance_scale=scale),
        )
        for scale in scales
    ]


class TestNeighborCohorts:
    def test_structural_signature_ignores_thermal_params(self):
        a, b = _configs("krylov")
        assert cohort_signature(a) != cohort_signature(b)
        assert structural_signature(a) == structural_signature(b)

    def test_structural_signature_respects_geometry(self):
        a, b = _configs("krylov")
        wide = SimulationConfig(
            duration=2.0, solver="krylov", nx=32,
            thermal_params=ThermalParams(resistance_scale=4.0),
        )
        assert structural_signature(a) != structural_signature(wide)

    def test_default_grouping_unchanged_by_neighbors_flag(self):
        # Exact-tier configs must partition exactly as before the
        # neighbor mode existed: byte-identity of the default path
        # rides on this.
        configs = _configs("exact")
        assert group_cohorts(configs) == group_cohorts(configs, neighbors=True)
        assert group_cohorts(configs, neighbors=True) == [[0], [1]]

    def test_krylov_configs_form_neighbor_cohorts(self):
        groups = group_cohorts(_configs("krylov"), neighbors=True)
        assert groups == [[0, 1]]
        # Without the flag they still partition by exact signature.
        assert group_cohorts(_configs("krylov")) == [[0], [1]]

    def test_mixed_tiers_never_share_a_cohort(self):
        configs = _configs("exact", scales=(4.0,)) + _configs(
            "krylov", scales=(4.0,)
        )
        groups = group_cohorts(configs, neighbors=True)
        assert len(groups) == 2
